"""Sanitized locking primitives: observed lock-order graph + violations.

A :class:`LockOrderSanitizer` hands out :class:`SanitizedLock` /
:class:`SanitizedCondition` wrappers that behave exactly like
``threading.Lock`` / ``threading.Condition`` but additionally record,
per thread, the stack of locks currently held.  Every acquisition made
while another lock is held adds a *domain* edge (``held -> acquired``)
to the observed lock-order graph, with the Python stack of the first
acquisition that created the edge.  From those observations the
sanitizer reports three classes of bug the static RFD7xx rules can only
approximate:

``order-cycle``
    an acquisition order ``A -> B`` was observed after ``B -> A`` — two
    threads interleaving those paths can deadlock.  Detected the moment
    the reversing edge appears, with both stacks.
``held-blocking``
    an unbounded ``Condition.wait()`` (no timeout) while the thread
    holds *another* sanitized lock — the classic way one stalled
    consumer freezes every other user of that lock.
``re-acquire``
    a thread blocks on a non-reentrant lock it already holds — certain
    deadlock, raised immediately instead of hanging the test run.

Locks are identified by *domain* strings (``"service.hub"``,
``"daemon.conns"``), the same names the static analyzer derives, so a
runtime report and an ``rflint --project`` report speak the same
vocabulary.  Domains deliberately name lock *roles*, not instances: two
instances of the same domain nested inside each other is reported too
(``same-domain nesting``), because instance order is unverifiable.

The sanitizer itself reads no clocks and keeps deterministic structures
only; it is safe to enable around the determinism-audited pipeline.
"""

from __future__ import annotations

import threading
import traceback
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Set, Tuple


def _capture_stack(skip: int = 2, limit: int = 24) -> str:
    """The current stack, trimmed of the sanitizer's own frames."""
    frames = traceback.extract_stack()
    if skip:
        frames = frames[:-skip]
    return "".join(traceback.format_list(frames[-limit:]))


@dataclass
class Violation:
    """One observed locking bug."""

    kind: str          # "order-cycle" | "held-blocking" | "re-acquire"
    message: str
    stack: str = ""

    def format(self) -> str:
        text = f"[{self.kind}] {self.message}"
        if self.stack:
            text += "\n" + self.stack.rstrip()
        return text


@dataclass
class Edge:
    """One observed ``held -> acquired`` ordering between lock domains."""

    src: str
    dst: str
    count: int = 0
    #: stack of the acquisition that first created this edge
    stack: str = ""


@dataclass
class SanitizerReport:
    """Everything the sanitizer observed, for teardown-time assertion."""

    edges: List[Tuple[str, str, int]] = field(default_factory=list)
    violations: List[Violation] = field(default_factory=list)
    locks_created: int = 0

    @property
    def ok(self) -> bool:
        return not self.violations

    def format(self) -> str:
        lines = [
            f"lock-order sanitizer: {self.locks_created} lock(s), "
            f"{len(self.edges)} ordering edge(s), "
            f"{len(self.violations)} violation(s)"
        ]
        for src, dst, count in self.edges:
            lines.append(f"  order: {src} -> {dst} (x{count})")
        for violation in self.violations:
            lines.append(violation.format())
        return "\n".join(lines)


class LockOrderSanitizer:
    """Observes every sanitized acquisition and accumulates the report.

    One sanitizer instance spans a whole test session; its graph is
    cumulative, so an ordering established by one test and reversed by
    another is still caught.  All bookkeeping happens under a private
    plain mutex (never exposed, never held while calling out), so the
    sanitizer cannot itself participate in an ordering cycle.
    """

    def __init__(self):
        self._mutex = threading.Lock()
        self._local = threading.local()
        self._edges: Dict[Tuple[str, str], Edge] = {}
        self._violations: List[Violation] = []
        self._locks_created = 0

    # -- factories -------------------------------------------------------------

    def lock(self, domain: str = "lock") -> "SanitizedLock":
        with self._mutex:
            self._locks_created += 1
        return SanitizedLock(self, domain)

    def condition(self, domain: str = "condition") -> "SanitizedCondition":
        with self._mutex:
            self._locks_created += 1
        return SanitizedCondition(self, domain)

    # -- per-thread held stack -------------------------------------------------

    def _held(self) -> List["SanitizedLock"]:
        held = getattr(self._local, "held", None)
        if held is None:
            held = self._local.held = []
        return held

    def held_domains(self) -> Tuple[str, ...]:
        """Domains the calling thread currently holds, outermost first."""
        return tuple(lock.domain for lock in self._held())

    # -- acquisition bookkeeping ----------------------------------------------

    def _before_acquire(self, lock: "SanitizedLock", blocking: bool,
                        timeout: Optional[float]) -> None:
        if not any(h is lock for h in self._held()):
            return
        unbounded = blocking and (timeout is None or timeout < 0)
        violation = Violation(
            kind="re-acquire",
            message=(f"thread re-acquires non-reentrant lock "
                     f"{lock.domain!r} it already holds"
                     + ("" if unbounded else " (bounded attempt)")),
            stack=_capture_stack(skip=3),
        )
        with self._mutex:
            self._violations.append(violation)
        if unbounded:
            # proceeding would hang the suite forever; fail loudly instead
            raise RuntimeError(violation.format())

    def _after_acquire(self, lock: "SanitizedLock") -> None:
        held = self._held()
        for holder in held:
            self._add_edge(holder, lock)
        held.append(lock)

    def _on_release(self, lock: "SanitizedLock") -> None:
        held = self._held()
        for i in range(len(held) - 1, -1, -1):
            if held[i] is lock:
                del held[i]
                return

    def _add_edge(self, holder: "SanitizedLock", acquired: "SanitizedLock") -> None:
        src, dst = holder.domain, acquired.domain
        with self._mutex:
            edge = self._edges.get((src, dst))
            if edge is not None:
                edge.count += 1
                return
            stack = _capture_stack(skip=4)
            self._edges[(src, dst)] = Edge(src, dst, count=1, stack=stack)
            if src == dst:
                self._violations.append(Violation(
                    kind="order-cycle",
                    message=(f"same-domain nesting: two {src!r} locks held "
                             "at once (instance order is unverifiable)"),
                    stack=stack,
                ))
                return
            path = self._find_path(dst, src)
            if path is not None:
                cycle = " -> ".join([src, *path])
                detail = ""
                if len(path) >= 2:
                    first = self._edges.get((path[0], path[1]))
                    if first is not None and first.stack:
                        detail = ("\nfirst acquisition of the reversed "
                                  "order:\n" + first.stack)
                self._violations.append(Violation(
                    kind="order-cycle",
                    message=f"lock-order inversion: {cycle}",
                    stack=stack + detail,
                ))

    def _find_path(self, src: str, dst: str) -> Optional[List[str]]:
        """A domain path src ~> dst over recorded edges (DFS, sorted)."""
        seen: Set[str] = set()
        path: List[str] = [src]

        def walk(node: str) -> Optional[List[str]]:
            if node == dst:
                return list(path)
            seen.add(node)
            for (a, b) in sorted(self._edges):
                if a != node or b in seen:
                    continue
                path.append(b)
                found = walk(b)
                if found is not None:
                    return found
                path.pop()
            return None

        return walk(src)

    # -- condition-wait bookkeeping -------------------------------------------

    def _on_wait(self, lock: "SanitizedLock", timeout: Optional[float]) -> None:
        if timeout is not None:
            return
        others = [h.domain for h in self._held() if h is not lock]
        if not others:
            return
        with self._mutex:
            self._violations.append(Violation(
                kind="held-blocking",
                message=(f"unbounded wait on {lock.domain!r} while holding "
                         f"{', '.join(repr(d) for d in others)}"),
                stack=_capture_stack(skip=4),
            ))

    def _suspend(self, lock: "SanitizedLock") -> None:
        self._on_release(lock)

    def _resume(self, lock: "SanitizedLock") -> None:
        self._after_acquire(lock)

    # -- reporting -------------------------------------------------------------

    @property
    def violations(self) -> List[Violation]:
        with self._mutex:
            return list(self._violations)

    def edges(self) -> List[Tuple[str, str, int]]:
        with self._mutex:
            return [(e.src, e.dst, e.count)
                    for _, e in sorted(self._edges.items())]

    def order_cycles(self) -> List[Violation]:
        return [v for v in self.violations if v.kind == "order-cycle"]

    def report(self) -> SanitizerReport:
        with self._mutex:
            return SanitizerReport(
                edges=[(e.src, e.dst, e.count)
                       for _, e in sorted(self._edges.items())],
                violations=list(self._violations),
                locks_created=self._locks_created,
            )

    def reset(self) -> None:
        with self._mutex:
            self._edges.clear()
            self._violations.clear()
            self._locks_created = 0


class SanitizedLock:
    """Drop-in ``threading.Lock`` that reports to a sanitizer."""

    def __init__(self, sanitizer: LockOrderSanitizer, domain: str):
        self._sanitizer = sanitizer
        self.domain = domain
        self._lock = threading.Lock()

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        self._sanitizer._before_acquire(
            self, blocking, None if timeout == -1 else timeout)
        acquired = self._lock.acquire(blocking, timeout)
        if acquired:
            self._sanitizer._after_acquire(self)
        return acquired

    def release(self) -> None:
        self._lock.release()
        self._sanitizer._on_release(self)

    def locked(self) -> bool:
        return self._lock.locked()

    def __enter__(self) -> bool:
        return self.acquire()

    def __exit__(self, *exc) -> None:
        self.release()

    def __repr__(self) -> str:
        return f"<SanitizedLock {self.domain!r}>"


class SanitizedCondition:
    """Drop-in ``threading.Condition`` that reports to a sanitizer.

    The condition owns a :class:`SanitizedLock` and binds the real
    ``threading.Condition`` to that lock's inner primitive, so every
    ``with cond:`` records ordering exactly like a plain sanitized lock
    while ``wait``/``notify`` keep stdlib semantics.  ``wait`` with no
    timeout while the thread holds any *other* sanitized lock is the
    ``held-blocking`` violation.
    """

    def __init__(self, sanitizer: LockOrderSanitizer, domain: str):
        self._sanitizer = sanitizer
        self.domain = domain
        self._sanlock = SanitizedLock(sanitizer, domain)
        self._cond = threading.Condition(self._sanlock._lock)

    def acquire(self, blocking: bool = True, timeout: float = -1) -> bool:
        return self._sanlock.acquire(blocking, timeout)

    def release(self) -> None:
        self._sanlock.release()

    def __enter__(self) -> bool:
        return self._sanlock.__enter__()

    def __exit__(self, *exc) -> None:
        self._sanlock.__exit__(*exc)

    def wait(self, timeout: Optional[float] = None) -> bool:
        self._sanitizer._on_wait(self._sanlock, timeout)
        self._sanitizer._suspend(self._sanlock)
        try:
            return self._cond.wait(timeout)
        finally:
            self._sanitizer._resume(self._sanlock)

    def wait_for(self, predicate, timeout: Optional[float] = None):
        self._sanitizer._on_wait(self._sanlock, timeout)
        self._sanitizer._suspend(self._sanlock)
        try:
            return self._cond.wait_for(predicate, timeout)
        finally:
            self._sanitizer._resume(self._sanlock)

    def notify(self, n: int = 1) -> None:
        self._cond.notify(n)

    def notify_all(self) -> None:
        self._cond.notify_all()

    def __repr__(self) -> str:
        return f"<SanitizedCondition {self.domain!r}>"
