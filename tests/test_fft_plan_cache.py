"""FFT plan cache behavior: hits, misses, and observability export."""

import numpy as np
import pytest

from repro.dsp.fftutil import (
    FftPlan,
    get_plan,
    plan_cache_stats,
    reset_plan_cache,
    set_plan_cache_obs,
    spectrogram,
    spectrogram_frames,
)
from repro.obs import Observability


@pytest.fixture(autouse=True)
def fresh_cache():
    reset_plan_cache()
    set_plan_cache_obs(None)
    yield
    reset_plan_cache()
    set_plan_cache_obs(None)


def test_miss_then_hit():
    a = get_plan(256)
    stats = plan_cache_stats()
    assert (stats["hits"], stats["misses"], stats["size"]) == (0, 1, 1)

    b = get_plan(256)
    assert b is a
    stats = plan_cache_stats()
    assert (stats["hits"], stats["misses"], stats["size"]) == (1, 1, 1)


def test_distinct_configurations_get_distinct_plans():
    p1 = get_plan(256)
    p2 = get_plan(512)
    p3 = get_plan(256, window="hann")
    p4 = get_plan(256, dtype=np.complex128)
    assert len({id(p) for p in (p1, p2, p3, p4)}) == 4
    assert plan_cache_stats()["size"] == 4


def test_reset_clears_everything():
    get_plan(128)
    get_plan(128)
    reset_plan_cache()
    assert plan_cache_stats() == {"hits": 0, "misses": 0, "size": 0}


def test_obs_counters_exported():
    obs = Observability()
    set_plan_cache_obs(obs)
    get_plan(64)     # miss
    get_plan(64)     # hit
    get_plan(128)    # miss
    hits = obs.counter("rfdump_fft_plan_cache_hits_total")
    misses = obs.counter("rfdump_fft_plan_cache_misses_total")
    assert hits.value == 1
    assert misses.value == 2


def test_plan_windows_do_not_widen_complex64():
    frames = np.ones((3, 64), dtype=np.complex64)
    for window in ("boxcar", "hann", "hamming", "blackman"):
        plan = FftPlan(64, np.complex64, window)
        out = plan.power_spectra(frames)
        assert out.dtype == np.float32, window


def test_spectrogram_uses_cache_and_matches_plain_fft():
    rng = np.random.default_rng(5)
    x = (rng.standard_normal(4096) + 1j * rng.standard_normal(4096)).astype(
        np.complex64
    )
    spec = spectrogram(x, fft_size=256)
    assert plan_cache_stats()["misses"] >= 1

    # numerically identical to the unbatched textbook computation
    frames = x[: 16 * 256].reshape(16, 256)
    expected = np.abs(np.fft.fftshift(np.fft.fft(frames, axis=1), axes=1)) ** 2 / 256
    np.testing.assert_array_equal(spec, expected.astype(spec.dtype))


def test_spectrogram_frames_respects_window():
    rng = np.random.default_rng(6)
    frames = (rng.standard_normal((4, 128))
              + 1j * rng.standard_normal((4, 128))).astype(np.complex64)
    box = spectrogram_frames(frames)
    hann = spectrogram_frames(frames, window="hann")
    assert box.shape == hann.shape == (4, 128)
    assert not np.allclose(box, hann)


def test_bad_plan_arguments_rejected():
    with pytest.raises(ValueError):
        get_plan(0)
    with pytest.raises(ValueError):
        get_plan(64, window="kaiser")
