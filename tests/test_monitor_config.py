"""Tests for MonitorConfig, the Monitor protocol and make_monitor."""

import dataclasses

import pytest

from repro import Monitor, MonitorConfig, make_monitor
from repro.core import EnergyNaiveMonitor, NaiveMonitor, RFDumpMonitor
from repro.core.config import LEGACY_ALIASES, resolve_monitor_config
from repro.core.monitor import MONITOR_NAMES
from repro.core.streaming import StreamingMonitor
from repro.errors import ConfigurationError


class TestMonitorConfig:
    def test_defaults(self):
        cfg = MonitorConfig()
        assert cfg.protocols == ("wifi", "bluetooth")
        assert cfg.kinds == ("timing", "phase")
        assert cfg.workers == 1
        assert cfg.backend == "thread"
        assert cfg.obs is None

    def test_frozen(self):
        with pytest.raises(dataclasses.FrozenInstanceError):
            MonitorConfig().workers = 4

    def test_sequences_normalised_to_tuples(self):
        cfg = MonitorConfig(protocols=["wifi"], kinds=["timing"])
        assert cfg.protocols == ("wifi",)
        assert cfg.kinds == ("timing",)

    @pytest.mark.parametrize("bad", [
        {"sample_rate": 0},
        {"workers": 0},
        {"backend": "greenlet"},
        {"granularity": "chunk"},
        {"timeout": -1.0},
    ])
    def test_validation(self, bad):
        with pytest.raises(ValueError):
            MonitorConfig(**bad)

    def test_round_trip(self):
        cfg = MonitorConfig(
            sample_rate=8e6, protocols=("zigbee",), workers=3,
            backend="process", granularity="range", timeout=2.0,
        )
        assert MonitorConfig.from_kwargs(**cfg.to_kwargs()) == cfg

    def test_legacy_names_still_resolve_in_from_kwargs(self):
        cfg = MonitorConfig(workers=2, backend="process", timeout=1.5)
        legacy = {"workers": 2, "parallel_backend": "process",
                  "parallel_timeout": 1.5}
        assert set(LEGACY_ALIASES) >= {"parallel_backend", "parallel_timeout"}
        assert MonitorConfig.from_kwargs(**legacy) == cfg

    def test_to_kwargs_emits_canonical_names_only(self):
        out = MonitorConfig(backend="process").to_kwargs()
        assert "backend" in out
        for old in LEGACY_ALIASES:
            assert old not in out
        with pytest.raises(TypeError):
            MonitorConfig().to_kwargs(legacy=True)

    def test_from_kwargs_rejects_unknown(self):
        with pytest.raises(TypeError):
            MonitorConfig.from_kwargs(warp_factor=9)

    def test_from_kwargs_rejects_alias_conflict(self):
        with pytest.raises(ValueError):
            MonitorConfig.from_kwargs(backend="thread", parallel_backend="process")

    def test_replace_revalidates(self):
        cfg = MonitorConfig()
        assert cfg.replace(workers=4).workers == 4
        with pytest.raises(ValueError):
            cfg.replace(workers=0)


class TestResolve:
    def test_kwargs_only(self):
        cfg = resolve_monitor_config(None, workers=2)
        assert cfg.workers == 2

    def test_config_only_passthrough(self):
        cfg = MonitorConfig(workers=2)
        assert resolve_monitor_config(cfg) is cfg

    def test_consistent_mix_no_warning(self, recwarn):
        cfg = MonitorConfig(workers=2)
        out = resolve_monitor_config(cfg, workers=2)
        assert out.workers == 2
        assert not [w for w in recwarn if w.category is DeprecationWarning]

    def test_inconsistent_mix_raises(self):
        cfg = MonitorConfig(workers=2)
        with pytest.raises(ConfigurationError, match="workers"):
            resolve_monitor_config(cfg, workers=4)

    def test_conflicting_legacy_alias_raises(self):
        cfg = MonitorConfig(backend="thread")
        with pytest.raises(ConfigurationError, match="backend"):
            resolve_monitor_config(cfg, parallel_backend="process")

    def test_agreeing_mix_returns_config_unchanged(self):
        cfg = MonitorConfig(workers=2, backend="process")
        out = resolve_monitor_config(cfg, workers=2,
                                     parallel_backend="process")
        assert out is cfg


class TestMonitorsAcceptConfig:
    def test_rfdump_config_equivalent_to_kwargs(self):
        cfg = MonitorConfig(protocols=("wifi",), kinds=("timing",), workers=2)
        a = RFDumpMonitor(config=cfg)
        b = RFDumpMonitor(protocols=("wifi",), kinds=("timing",), workers=2)
        assert a.config == b.config
        assert a.protocols == b.protocols == ("wifi",)

    def test_rfdump_conflicting_mix_raises(self):
        cfg = MonitorConfig(protocols=("wifi",))
        with pytest.raises(ConfigurationError, match="protocols"):
            RFDumpMonitor(config=cfg, protocols=("bluetooth",))

    def test_naive_accepts_config(self):
        cfg = MonitorConfig(protocols=("wifi",), demodulate=False)
        monitor = NaiveMonitor(config=cfg)
        assert monitor.protocols == ("wifi",)
        assert monitor.demodulate is False

    def test_energy_accepts_config(self):
        cfg = MonitorConfig(protocols=("wifi",), noise_floor=1e-6)
        monitor = EnergyNaiveMonitor(config=cfg)
        assert monitor.noise_floor == 1e-6

    def test_streaming_builds_inner_monitor_from_config(self):
        cfg = MonitorConfig(protocols=("wifi",))
        streaming = StreamingMonitor(config=cfg)
        assert streaming.monitor.protocols == ("wifi",)

    def test_streaming_requires_monitor_or_config(self):
        with pytest.raises(ValueError):
            StreamingMonitor()


class TestMakeMonitor:
    @pytest.mark.parametrize("name,cls", [
        ("rfdump", RFDumpMonitor),
        ("naive", NaiveMonitor),
        ("energy", EnergyNaiveMonitor),
        ("naive+energy", EnergyNaiveMonitor),
        ("streaming", StreamingMonitor),
    ])
    def test_factory_names(self, name, cls):
        monitor = make_monitor(name, MonitorConfig())
        assert isinstance(monitor, cls)
        assert isinstance(monitor, Monitor)

    def test_name_normalised(self):
        assert isinstance(make_monitor("  RFDump "), RFDumpMonitor)

    def test_unknown_name_lists_choices(self):
        with pytest.raises(ValueError) as err:
            make_monitor("quantum")
        for name in MONITOR_NAMES:
            assert name in str(err.value)

    def test_default_config(self):
        monitor = make_monitor("rfdump")
        assert monitor.config == MonitorConfig()

    def test_context_manager_protocol(self, wifi_trace):
        with make_monitor("rfdump", MonitorConfig(
            sample_rate=wifi_trace.sample_rate,
            center_freq=wifi_trace.center_freq,
            protocols=("wifi",),
        )) as monitor:
            report = monitor.process(wifi_trace.buffer)
        assert report.packets
