"""Tests for repro.emulator.scenario rendering."""

import numpy as np
import pytest

from repro.emulator import (
    BluetoothL2PingSession,
    Scenario,
    WifiPingSession,
)
from repro.util.db import linear_to_db


class TestScenario:
    def test_trace_length(self):
        trace = Scenario(duration=0.01).render()
        assert len(trace.samples) == 80000

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            Scenario(duration=0.0)

    def test_noise_floor_power(self):
        trace = Scenario(duration=0.01, noise_power=2.0, seed=3).render()
        assert np.mean(np.abs(trace.samples) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_no_noise_option(self):
        trace = Scenario(duration=0.005).render(include_noise=False)
        assert np.allclose(trace.samples, 0.0)

    def test_deterministic_given_seed(self):
        def render():
            sc = Scenario(duration=0.02, seed=11)
            sc.add(WifiPingSession(n_pings=1, seed=2))
            return sc.render().samples

        assert np.array_equal(render(), render())

    def test_snr_realized(self):
        sc = Scenario(duration=0.03, seed=5)
        sc.add(WifiPingSession(n_pings=1, snr_db=15.0, seed=1))
        trace = sc.render(include_noise=False)
        gt = trace.ground_truth.observable("wifi")[0]
        lo = int(gt.start_time * trace.sample_rate) + 100
        hi = int(gt.end_time * trace.sample_rate) - 100
        power = float(np.mean(np.abs(trace.samples[lo:hi]) ** 2))
        assert linear_to_db(power) == pytest.approx(15.0, abs=0.5)

    def test_events_past_duration_dropped(self):
        sc = Scenario(duration=0.01)
        sc.add(WifiPingSession(n_pings=50, interval=5e-3))
        trace = sc.render()
        assert all(t.start_time < 0.01 for t in trace.ground_truth.transmissions)

    def test_truncated_event_not_observable(self):
        sc = Scenario(duration=0.0065)  # cuts the first exchange mid-air
        sc.add(WifiPingSession(n_pings=1, payload_size=500))
        trace = sc.render()
        truncated = [
            t for t in trace.ground_truth.transmissions if t.meta.get("truncated")
        ]
        assert truncated
        assert all(not t.observable for t in truncated)


class TestWifiChannelPinning:
    def _trace(self, channel, center=2.4415e9):
        sc = Scenario(duration=0.03, seed=6, center_freq=center)
        sc.add(WifiPingSession(n_pings=1, snr_db=20.0, channel=channel))
        return sc.render()

    def test_nearby_channel_observable(self):
        trace = self._trace(channel=6)  # 2.437 GHz, offset -4.5 MHz
        obs = trace.ground_truth.observable("wifi")
        assert len(obs) == 4
        assert obs[0].freq_offset == pytest.approx(-4.5e6)

    def test_distant_channel_invisible(self):
        trace = self._trace(channel=1)  # 2.412 GHz, ~30 MHz away
        assert trace.ground_truth.observable("wifi") == []
        # and no energy was rendered
        assert np.mean(np.abs(trace.samples) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_tuned_to_channel_offset_zero(self):
        trace = self._trace(channel=6, center=2.437e9)
        obs = trace.ground_truth.observable("wifi")
        assert obs[0].freq_offset == 0.0

    def test_offset_signal_band_limited(self):
        # the off-center render is low-passed: spectrum at band edge stays
        # below the in-band level
        trace = self._trace(channel=6)
        spec = np.abs(np.fft.fftshift(np.fft.fft(trace.samples[:65536]))) ** 2
        edge = spec[:2000].mean()
        middle = spec[30000:35000].mean()
        assert middle > 2 * edge

    def test_unpinned_defaults_to_center(self):
        sc = Scenario(duration=0.03, seed=7)
        sc.add(WifiPingSession(n_pings=1, snr_db=20.0))
        trace = sc.render()
        assert trace.ground_truth.observable("wifi")[0].freq_offset == 0.0

    def test_invalid_channel_rejected(self):
        from repro.emulator.traffic import _wifi_rf_freq

        with pytest.raises(ValueError):
            _wifi_rf_freq(0)
        with pytest.raises(ValueError):
            _wifi_rf_freq(12)


class TestBluetoothObservability:
    def test_out_of_band_not_rendered(self):
        sc = Scenario(duration=0.5, seed=2)
        sc.add(BluetoothL2PingSession(n_pings=60, snr_db=20.0))
        trace = sc.render()
        gt = trace.ground_truth
        all_bt = gt.by_protocol("bluetooth")
        visible = gt.observable("bluetooth")
        # roughly 8/79 of hops land in the 8 MHz band
        assert 0 < len(visible) < len(all_bt) / 3

    def test_observable_channels_in_band(self):
        from repro.phy.bluetooth_fh import channel_freq

        sc = Scenario(duration=0.5, seed=2)
        sc.add(BluetoothL2PingSession(n_pings=60, snr_db=20.0))
        trace = sc.render()
        for t in trace.ground_truth.observable("bluetooth"):
            assert abs(channel_freq(t.channel) - trace.center_freq) <= 3.5e6

    def test_freq_offset_recorded(self):
        sc = Scenario(duration=0.5, seed=2)
        sc.add(BluetoothL2PingSession(n_pings=40, snr_db=20.0))
        trace = sc.render()
        from repro.phy.bluetooth_fh import channel_freq

        for t in trace.ground_truth.observable("bluetooth"):
            assert t.freq_offset == pytest.approx(
                channel_freq(t.channel) - trace.center_freq, abs=1e3
            )
