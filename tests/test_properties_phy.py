"""Property-based tests over the PHY round trips (hypothesis)."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.phy.bluetooth import (
    BluetoothDemodulator,
    BluetoothModulator,
    TYPE_DH1,
    TYPE_DM1,
)
from repro.phy.cck import CckDemodulator, cck_chips_11mbps, cck_chips_5_5mbps
from repro.phy.gfsk import GfskModem
from repro.phy.ofdm import OfdmModem
from repro.phy.zigbee import bytes_from_symbols, symbols_from_bytes
from repro.phy.wifi import WifiDemodulator, WifiModulator
from repro.phy.wifi_mac import build_data_frame, parse_mac_frame

FS = 8e6

_SLOW = settings(max_examples=12, deadline=None)


class TestGfskProperties:
    # The discriminator cancels CFO by subtracting the mean frequency,
    # which presumes roughly balanced bits — guaranteed in practice by
    # Bluetooth's whitening.  The strategy reflects that design envelope,
    # and the first/last bits are excluded: real packets guard them with
    # a preamble/trailer (edge filter transients land there).
    @given(st.lists(st.integers(0, 1), min_size=20, max_size=400)
           .filter(lambda v: 0.3 <= sum(v) / len(v) <= 0.7)
           .map(lambda v: np.array(v, dtype=np.uint8)))
    @_SLOW
    def test_clean_round_trip(self, bits):
        modem = GfskModem(FS)
        out = modem.demodulate(modem.modulate(bits))
        assert np.array_equal(out[2 : bits.size - 2], bits[2:-2])

    @given(st.lists(st.integers(0, 1), min_size=20, max_size=200).map(
        lambda v: np.array(v, dtype=np.uint8)))
    @_SLOW
    def test_constant_envelope(self, bits):
        wave = GfskModem(FS).modulate(bits)
        assert np.allclose(np.abs(wave), 1.0, atol=1e-4)


class TestBluetoothProperties:
    @given(st.binary(min_size=1, max_size=27), st.integers(0, 63))
    @_SLOW
    def test_dh1_round_trip(self, data, clock):
        mod = BluetoothModulator(FS)
        dem = BluetoothDemodulator(FS)
        bits = mod.packet_bits(TYPE_DH1, data, clock)
        wave = dem.modem.modulate(bits)
        packet = dem.demodulate(np.concatenate([
            np.zeros(64, dtype=np.complex64), wave,
            np.zeros(64, dtype=np.complex64),
        ]))
        assert packet.payload == data
        assert packet.clock == clock

    @given(st.binary(min_size=1, max_size=17), st.integers(0, 63))
    @_SLOW
    def test_dm1_round_trip(self, data, clock):
        mod = BluetoothModulator(FS)
        dem = BluetoothDemodulator(FS)
        bits = mod.packet_bits(TYPE_DM1, data, clock)
        wave = dem.modem.modulate(bits)
        packet = dem.demodulate(np.concatenate([
            np.zeros(64, dtype=np.complex64), wave,
            np.zeros(64, dtype=np.complex64),
        ]))
        assert packet.payload == data


class TestZigbeeProperties:
    @given(st.binary(max_size=120))
    def test_symbol_round_trip(self, data):
        assert bytes_from_symbols(symbols_from_bytes(data)) == data


class TestCckProperties:
    @given(st.lists(st.integers(0, 1), min_size=8, max_size=160)
           .filter(lambda v: len(v) % 8 == 0)
           .map(lambda v: np.array(v, dtype=np.uint8)),
           st.floats(-np.pi, np.pi))
    @_SLOW
    def test_11mbps_chip_round_trip(self, bits, phase0):
        decoder = CckDemodulator(22e6, 11.0)
        chips = cck_chips_11mbps(bits, initial_phase=phase0)
        samples = np.repeat(chips, 2)
        out = decoder.demodulate(samples, bits.size, reference_phase=phase0)
        assert np.array_equal(out, bits)

    @given(st.lists(st.integers(0, 1), min_size=4, max_size=80)
           .filter(lambda v: len(v) % 4 == 0)
           .map(lambda v: np.array(v, dtype=np.uint8)))
    @_SLOW
    def test_5_5mbps_chip_round_trip(self, bits):
        decoder = CckDemodulator(22e6, 5.5)
        chips = cck_chips_5_5mbps(bits)
        out = decoder.demodulate(np.repeat(chips, 2), bits.size, 0.0)
        assert np.array_equal(out, bits)


class TestOfdmProperties:
    @given(st.binary(max_size=200))
    @_SLOW
    def test_frame_round_trip(self, payload):
        modem = OfdmModem(FS)
        wave = modem.modulate(payload)
        rx = np.concatenate([
            np.zeros(100, dtype=np.complex64), wave,
            np.zeros(2 * 80, dtype=np.complex64),
        ])
        packet = modem.demodulate(rx)
        assert packet.payload == payload


class TestWifiProperties:
    @given(st.binary(min_size=4, max_size=120),
           st.sampled_from([1.0, 2.0]),
           st.integers(0, 4095))
    @_SLOW
    def test_mpdu_round_trip(self, body, rate, seq):
        mod = WifiModulator(FS)
        dem = WifiDemodulator(FS)
        mpdu = build_data_frame(1, 2, body, seq=seq)
        wave = mod.modulate(mpdu, rate)
        rx = np.concatenate([
            np.zeros(120, dtype=np.complex64), wave,
            np.zeros(120, dtype=np.complex64),
        ])
        packet = dem.demodulate(rx)
        assert packet.mpdu == mpdu
        assert parse_mac_frame(packet.mpdu).seq == seq
