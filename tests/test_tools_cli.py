"""Tests for the rfdump / rfrecord command-line tools."""

import pytest

from repro.tools import rfdump, rfrecord


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mix.iq"
    code = rfrecord.main([str(path), "--preset", "wifi", "--duration", "0.08",
                          "--seed", "5"])
    assert code == 0
    return path


class TestRfrecord:
    def test_writes_trace_and_sidecar(self, recorded):
        assert recorded.exists()
        assert recorded.with_suffix(".iq.json").exists()

    def test_all_presets_render(self, tmp_path):
        for preset in rfrecord.PRESETS:
            path = tmp_path / f"{preset}.iq"
            code = rfrecord.main(
                [str(path), "--preset", preset, "--duration", "0.05"]
            )
            assert code == 0, preset
            assert path.stat().st_size == 0.05 * 8e6 * 8

    def test_metadata_extras(self, recorded):
        from repro.trace.io import read_meta

        meta = read_meta(recorded)
        assert meta.extra["preset"] == "wifi"
        assert meta.extra["observable_transmissions"] > 0

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            rfrecord.main([str(tmp_path / "x.iq"), "--preset", "nope"])


class TestRfdump:
    def test_packet_log(self, recorded, capsys):
        code = rfdump.main([str(recorded)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wifi" in out
        assert "ACK" in out

    def test_summary_mode(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--summary", "--protocols", "wifi"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out
        assert "real time" in out

    def test_no_demod(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--no-demod", "--summary"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out

    def test_missing_file(self, tmp_path, capsys):
        code = rfdump.main([str(tmp_path / "absent.iq")])
        assert code == 2

    def test_window_size_option(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--window-ms", "40", "--summary"])
        assert code == 0

    def test_workers_output_matches_serial(self, recorded, capsys):
        assert rfdump.main([str(recorded)]) == 0
        serial = capsys.readouterr().out
        assert rfdump.main([str(recorded), "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_rejects_bad_workers(self, recorded, capsys):
        assert rfdump.main([str(recorded), "--workers", "0"]) == 2

    def test_monitor_baseline_selection(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--monitor", "naive", "--summary"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out


class TestRfdumpObservability:
    def test_metrics_out_is_prometheus_parseable(self, recorded, tmp_path, capsys):
        out_path = tmp_path / "metrics.txt"
        code = rfdump.main([str(recorded), "--summary",
                            "--metrics-out", str(out_path)])
        assert code == 0
        page = out_path.read_text()
        assert "# TYPE rfdump_samples_total counter" in page
        assert "rfdump_packets_decoded_total" in page
        # every non-comment line is `name{labels} value`
        for line in page.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            if value != "+Inf":
                float(value)

    def test_trace_out_chrome_format(self, recorded, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        code = rfdump.main([str(recorded), "--summary",
                            "--trace-out", str(out_path)])
        assert code == 0
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "process" in names
        assert "peak_detection" in names
        assert all({"name", "ph", "pid", "tid", "ts"} <= set(e)
                   for e in events if e.get("ph") == "X")

    def test_trace_out_jsonl_format(self, recorded, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.jsonl"
        code = rfdump.main([str(recorded), "--summary",
                            "--trace-out", str(out_path)])
        assert code == 0
        spans = [json.loads(line)
                 for line in out_path.read_text().splitlines() if line]
        assert spans
        assert all("t_start" in s and "name" in s for s in spans)

    def test_deterministic_counters_across_workers(self, recorded, tmp_path, capsys):
        pages = []
        for workers in (1, 3):
            out_path = tmp_path / f"metrics-w{workers}.txt"
            code = rfdump.main([str(recorded), "--summary",
                                "--workers", str(workers),
                                "--metrics-out", str(out_path)])
            assert code == 0
            # timing-valued series (seconds histograms) legitimately vary;
            # every deterministic counter must match exactly
            pages.append("\n".join(
                line for line in out_path.read_text().splitlines()
                if "_total" in line and "_seconds" not in line
                and not line.startswith("#")
            ))
        assert pages[0] == pages[1]
