"""Tests for the rfdump / rfrecord command-line tools."""

import pytest

from repro.tools import rfdump, rfrecord


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mix.iq"
    code = rfrecord.main([str(path), "--preset", "wifi", "--duration", "0.08",
                          "--seed", "5"])
    assert code == 0
    return path


class TestRfrecord:
    def test_writes_trace_and_sidecar(self, recorded):
        assert recorded.exists()
        assert recorded.with_suffix(".iq.json").exists()

    def test_all_presets_render(self, tmp_path):
        for preset in rfrecord.PRESETS:
            path = tmp_path / f"{preset}.iq"
            code = rfrecord.main(
                [str(path), "--preset", preset, "--duration", "0.05"]
            )
            assert code == 0, preset
            assert path.stat().st_size == 0.05 * 8e6 * 8

    def test_metadata_extras(self, recorded):
        from repro.trace.io import read_meta

        meta = read_meta(recorded)
        assert meta.extra["preset"] == "wifi"
        assert meta.extra["observable_transmissions"] > 0

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            rfrecord.main([str(tmp_path / "x.iq"), "--preset", "nope"])


class TestRfdump:
    def test_packet_log(self, recorded, capsys):
        code = rfdump.main([str(recorded)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wifi" in out
        assert "ACK" in out

    def test_summary_mode(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--summary", "--protocols", "wifi"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out
        assert "real time" in out

    def test_no_demod(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--no-demod", "--summary"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out

    def test_missing_file(self, tmp_path, capsys):
        code = rfdump.main([str(tmp_path / "absent.iq")])
        assert code == 2

    def test_window_size_option(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--window-ms", "40", "--summary"])
        assert code == 0

    def test_workers_output_matches_serial(self, recorded, capsys):
        assert rfdump.main([str(recorded)]) == 0
        serial = capsys.readouterr().out
        assert rfdump.main([str(recorded), "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_rejects_bad_workers(self, recorded, capsys):
        assert rfdump.main([str(recorded), "--workers", "0"]) == 2

    def test_monitor_baseline_selection(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--monitor", "naive", "--summary"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out


class TestRfdumpEventFormat:
    def test_jsonl_emits_canonical_events(self, recorded, capsys):
        import json

        from repro.core.events import EVENT_SCHEMA_VERSION, read_events

        code = rfdump.main([str(recorded), "--format", "jsonl"])
        assert code == 0
        lines = capsys.readouterr().out.splitlines()
        assert lines
        events = list(read_events(lines))
        assert [e.seq for e in events] == list(range(len(events)))
        for line, event in zip(lines, events):
            # each line is the canonical wire form: re-encoding is identity
            assert event.to_json() == line
            assert json.loads(line)["v"] == EVENT_SCHEMA_VERSION

    def test_jsonl_matches_text_mode_packet_count(self, recorded, capsys):
        assert rfdump.main([str(recorded)]) == 0
        text_lines = [line for line in capsys.readouterr().out.splitlines()
                      if line and not line.startswith("#")]
        assert rfdump.main([str(recorded), "--format", "jsonl"]) == 0
        jsonl_lines = capsys.readouterr().out.splitlines()
        assert len(jsonl_lines) == len(text_lines)

    def test_jsonl_sharded_equals_streaming(self, recorded, capsys):
        assert rfdump.main([str(recorded), "--format", "jsonl"]) == 0
        streaming = capsys.readouterr().out
        assert rfdump.main([str(recorded), "--format", "jsonl",
                            "--shards", "2"]) == 0
        sharded = capsys.readouterr().out
        assert sharded == streaming

    def test_capture_sinks(self, recorded, tmp_path, capsys):
        import json
        import struct

        pcap_path = tmp_path / "events.pcap"
        sigmf_path = tmp_path / "events.sigmf-meta"
        code = rfdump.main([str(recorded), "--format", "jsonl",
                            "--pcap-out", str(pcap_path),
                            "--sigmf-out", str(sigmf_path)])
        assert code == 0
        n_events = len(capsys.readouterr().out.splitlines())

        raw = pcap_path.read_bytes()
        magic, _, _, _, _, _, link = struct.unpack("<IHHiIII", raw[:24])
        assert magic == 0xA1B2C3D4
        assert link == 147  # DLT_USER0
        offset, records = 24, 0
        while offset < len(raw):
            _, _, cap, orig = struct.unpack("<IIII", raw[offset:offset + 16])
            assert cap == orig
            json.loads(raw[offset + 16:offset + 16 + cap])  # JSON payload
            offset += 16 + cap
            records += 1
        assert records == n_events

        doc = json.loads(sigmf_path.read_text())
        assert doc["global"]["core:datatype"] == "cf32_le"
        assert len(doc["annotations"]) == n_events
        starts = [a["core:sample_start"] for a in doc["annotations"]]
        assert starts == sorted(starts)


class TestRfdumpdCLI:
    def test_address_parsing(self):
        from repro.tools.rfdumpd import _address

        assert _address("127.0.0.1:4951") == ("127.0.0.1", 4951)
        with pytest.raises(Exception):
            _address("no-port")

    def test_replay_connection_refused(self, recorded, capsys):
        from repro.tools import rfdumpd

        # a closed port: connection errors exit 2, like a missing file
        code = rfdumpd.main(["replay", str(recorded),
                             "--connect", "127.0.0.1:1"])
        assert code == 2

    def test_serve_replay_subscribe_round_trip(self, recorded, capsys):
        import json

        from repro import MonitorConfig
        from repro.service import RFDumpDaemon
        from repro.tools import rfdumpd
        from repro.trace.io import read_meta

        meta = read_meta(recorded)
        config = MonitorConfig(sample_rate=meta.sample_rate,
                               center_freq=meta.center_freq,
                               protocols=("wifi",))
        with RFDumpDaemon(config) as daemon:
            host, port = daemon.address
            connect = f"{host}:{port}"
            assert rfdumpd.main(["replay", str(recorded),
                                 "--connect", connect]) == 0
            done = json.loads(capsys.readouterr().out)
            assert done["type"] == "done"
            assert rfdumpd.main(["subscribe", "--connect", connect]) == 0
            sub_lines = capsys.readouterr().out.splitlines()
        assert len(sub_lines) == done["events"]
        # the subscriber stream is the rfdump --format jsonl stream
        assert rfdump.main([str(recorded), "--format", "jsonl",
                            "--protocols", "wifi"]) == 0
        cli_lines = capsys.readouterr().out.splitlines()
        assert sub_lines == cli_lines


class TestRfdumpObservability:
    def test_metrics_out_is_prometheus_parseable(self, recorded, tmp_path, capsys):
        out_path = tmp_path / "metrics.txt"
        code = rfdump.main([str(recorded), "--summary",
                            "--metrics-out", str(out_path)])
        assert code == 0
        page = out_path.read_text()
        assert "# TYPE rfdump_samples_total counter" in page
        assert "rfdump_packets_decoded_total" in page
        # every non-comment line is `name{labels} value`
        for line in page.splitlines():
            if not line or line.startswith("#"):
                continue
            name_part, value = line.rsplit(" ", 1)
            assert name_part
            if value != "+Inf":
                float(value)

    def test_trace_out_chrome_format(self, recorded, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.json"
        code = rfdump.main([str(recorded), "--summary",
                            "--trace-out", str(out_path)])
        assert code == 0
        doc = json.loads(out_path.read_text())
        events = doc["traceEvents"]
        names = {e["name"] for e in events if e.get("ph") == "X"}
        assert "process" in names
        assert "peak_detection" in names
        assert all({"name", "ph", "pid", "tid", "ts"} <= set(e)
                   for e in events if e.get("ph") == "X")

    def test_trace_out_jsonl_format(self, recorded, tmp_path, capsys):
        import json

        out_path = tmp_path / "trace.jsonl"
        code = rfdump.main([str(recorded), "--summary",
                            "--trace-out", str(out_path)])
        assert code == 0
        spans = [json.loads(line)
                 for line in out_path.read_text().splitlines() if line]
        assert spans
        assert all("t_start" in s and "name" in s for s in spans)

    def test_deterministic_counters_across_workers(self, recorded, tmp_path, capsys):
        pages = []
        for workers in (1, 3):
            out_path = tmp_path / f"metrics-w{workers}.txt"
            code = rfdump.main([str(recorded), "--summary",
                                "--workers", str(workers),
                                "--metrics-out", str(out_path)])
            assert code == 0
            # timing-valued series (seconds histograms) legitimately vary;
            # every deterministic counter must match exactly
            pages.append("\n".join(
                line for line in out_path.read_text().splitlines()
                if "_total" in line and "_seconds" not in line
                and not line.startswith("#")
            ))
        assert pages[0] == pages[1]
