"""Tests for the rfdump / rfrecord command-line tools."""

import pytest

from repro.tools import rfdump, rfrecord


@pytest.fixture(scope="module")
def recorded(tmp_path_factory):
    path = tmp_path_factory.mktemp("cli") / "mix.iq"
    code = rfrecord.main([str(path), "--preset", "wifi", "--duration", "0.08",
                          "--seed", "5"])
    assert code == 0
    return path


class TestRfrecord:
    def test_writes_trace_and_sidecar(self, recorded):
        assert recorded.exists()
        assert recorded.with_suffix(".iq.json").exists()

    def test_all_presets_render(self, tmp_path):
        for preset in rfrecord.PRESETS:
            path = tmp_path / f"{preset}.iq"
            code = rfrecord.main(
                [str(path), "--preset", preset, "--duration", "0.05"]
            )
            assert code == 0, preset
            assert path.stat().st_size == 0.05 * 8e6 * 8

    def test_metadata_extras(self, recorded):
        from repro.trace.io import read_meta

        meta = read_meta(recorded)
        assert meta.extra["preset"] == "wifi"
        assert meta.extra["observable_transmissions"] > 0

    def test_unknown_preset_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            rfrecord.main([str(tmp_path / "x.iq"), "--preset", "nope"])


class TestRfdump:
    def test_packet_log(self, recorded, capsys):
        code = rfdump.main([str(recorded)])
        assert code == 0
        out = capsys.readouterr().out
        assert "wifi" in out
        assert "ACK" in out

    def test_summary_mode(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--summary", "--protocols", "wifi"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out
        assert "real time" in out

    def test_no_demod(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--no-demod", "--summary"])
        assert code == 0
        out = capsys.readouterr().out
        assert "decoded packets" in out

    def test_missing_file(self, tmp_path, capsys):
        code = rfdump.main([str(tmp_path / "absent.iq")])
        assert code == 2

    def test_window_size_option(self, recorded, capsys):
        code = rfdump.main([str(recorded), "--window-ms", "40", "--summary"])
        assert code == 0

    def test_workers_output_matches_serial(self, recorded, capsys):
        assert rfdump.main([str(recorded)]) == 0
        serial = capsys.readouterr().out
        assert rfdump.main([str(recorded), "--workers", "3"]) == 0
        parallel = capsys.readouterr().out
        assert parallel == serial

    def test_rejects_bad_workers(self, recorded, capsys):
        assert rfdump.main([str(recorded), "--workers", "0"]) == 2
