"""Tests for repro.phy.cck."""

import numpy as np
import pytest

from repro.phy.cck import (
    cck_chips_5_5mbps,
    cck_chips_11mbps,
    cck_codeword,
    modulate_cck,
)


class TestCodeword:
    def test_length_8(self):
        assert cck_codeword(0, 0, 0, 0).size == 8

    def test_unit_magnitude(self):
        word = cck_codeword(0.3, 1.1, 2.0, -0.5)
        assert np.allclose(np.abs(word), 1.0)

    def test_phi1_rotates_whole_word(self):
        base = cck_codeword(0, 0.5, 1.0, 1.5)
        rotated = cck_codeword(np.pi / 3, 0.5, 1.0, 1.5)
        assert np.allclose(rotated, base * np.exp(1j * np.pi / 3))


class TestChipStreams:
    def test_11mbps_chip_count(self):
        chips = cck_chips_11mbps(np.zeros(16, dtype=np.uint8))
        assert chips.size == 16  # 8 bits -> 8 chips

    def test_5_5mbps_chip_count(self):
        chips = cck_chips_5_5mbps(np.zeros(8, dtype=np.uint8))
        assert chips.size == 16  # 4 bits -> 8 chips

    def test_different_data_different_chips(self, rng):
        a = cck_chips_11mbps(np.zeros(8, dtype=np.uint8))
        b = cck_chips_11mbps(np.ones(8, dtype=np.uint8))
        assert not np.allclose(a, b)

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            cck_chips_11mbps(np.zeros(7, dtype=np.uint8))
        with pytest.raises(ValueError):
            cck_chips_5_5mbps(np.zeros(3, dtype=np.uint8))


class TestModulate:
    def test_duration_11mbps(self):
        # 88 bits at 11 Mbps = 8 us = 64 samples at 8 Msps
        wave = modulate_cck(np.zeros(88, dtype=np.uint8), 11.0, 8e6)
        assert wave.size == 64

    def test_duration_5_5mbps(self):
        wave = modulate_cck(np.zeros(44, dtype=np.uint8), 5.5, 8e6)
        assert wave.size == 64

    def test_unit_envelope(self, rng):
        bits = rng.integers(0, 2, 88).astype(np.uint8)
        wave = modulate_cck(bits, 11.0, 8e6)
        assert np.allclose(np.abs(wave), 1.0, atol=1e-6)

    def test_rejects_barker_rates(self):
        with pytest.raises(ValueError):
            modulate_cck(np.zeros(8, dtype=np.uint8), 1.0, 8e6)
