"""Tests for the Bluetooth slot-timing detector and its session cache."""

import numpy as np
import pytest

from repro.constants import BT_SLOT
from repro.core.detectors import BluetoothTimingDetector
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult

FS = 8e6
SLOT = int(BT_SLOT * FS)  # 5000 samples


def _detection(starts, length=2400):
    history = PeakHistory(FS)
    if np.isscalar(length):
        lengths = [length] * len(starts)
    else:
        lengths = length
    for start, plen in zip(starts, lengths):
        history.append(int(start), int(start) + int(plen), 1.0, 1.0)
    return PeakDetectionResult(
        history=history, chunks=[], noise_floor=1.0, threshold=2.5,
        total_samples=int(starts[-1]) + 10000 if len(starts) else 0,
    )


class TestSlotAlignment:
    def test_detects_slot_aligned_peaks(self):
        starts = [1000 + i * 6 * SLOT for i in range(5)]
        out = BluetoothTimingDetector().classify(_detection(starts), None)
        assert {c.peak.index for c in out} == {1, 2, 3, 4}

    def test_first_packet_of_session_missed(self):
        # the paper observes exactly this: the timing block misses the
        # first packet in each Bluetooth session
        starts = [1000 + i * 6 * SLOT for i in range(5)]
        out = BluetoothTimingDetector().classify(_detection(starts), None)
        assert 0 not in {c.peak.index for c in out}

    def test_non_aligned_rejected(self):
        starts = [1000, 1000 + int(3.3 * SLOT), 1000 + int(7.7 * SLOT)]
        out = BluetoothTimingDetector().classify(_detection(starts), None)
        assert out == []

    def test_tolerance(self):
        slack = int(20e-6 * FS)  # inside the 30 us tolerance
        starts = [1000, 1000 + 4 * SLOT + slack]
        out = BluetoothTimingDetector().classify(_detection(starts), None)
        assert len(out) == 1

    def test_long_peaks_ignored(self):
        # peaks longer than 5 slots cannot be Bluetooth
        starts = [1000, 1000 + 6 * SLOT]
        out = BluetoothTimingDetector().classify(
            _detection(starts, length=6 * SLOT), None
        )
        assert out == []

    def test_short_spikes_ignored(self):
        starts = [1000, 1000 + 2 * SLOT]
        out = BluetoothTimingDetector().classify(
            _detection(starts, length=100), None
        )
        assert out == []

    def test_max_slots_bound(self):
        det = BluetoothTimingDetector(max_slots=10)
        starts = [1000, 1000 + 20 * SLOT]
        assert det.classify(_detection(starts), None) == []


class TestCache:
    def _session_starts(self, n=20, stride=12):
        return [1000 + i * stride * SLOT for i in range(n)]

    def test_cache_hits_dominate_steady_state(self):
        det = BluetoothTimingDetector()
        det.classify(_detection(self._session_starts()), None)
        assert det.stats["cache_hits"] > det.stats["history_searches"]

    def test_cache_disabled_searches_history(self):
        det = BluetoothTimingDetector(use_cache=False)
        det.classify(_detection(self._session_starts()), None)
        assert det.stats["cache_hits"] == 0
        assert det.stats["history_searches"] == det.stats["probes"]

    def test_same_classifications_with_and_without_cache(self):
        starts = self._session_starts()
        with_cache = BluetoothTimingDetector().classify(_detection(starts), None)
        without = BluetoothTimingDetector(use_cache=False).classify(
            _detection(starts), None
        )
        assert {c.peak.index for c in with_cache} == {
            c.peak.index for c in without
        }

    def test_confidence_grows_with_session(self):
        out = BluetoothTimingDetector().classify(
            _detection(self._session_starts()), None
        )
        assert out[-1].confidence >= out[0].confidence

    def test_wifi_ping_multiple_of_slot_false_positive(self):
        # 20 ms ping interval = 32 x 625 us: the paper's observed false
        # positive. Our detector reproduces it by design.
        starts = [1000 + i * 32 * SLOT for i in range(4)]
        out = BluetoothTimingDetector().classify(_detection(starts), None)
        assert len(out) == 3
