"""Determinism and shape tests for the stream fault injectors."""

import numpy as np
import pytest

from repro.dsp.samples import SampleBuffer
from repro.faults import (
    FaultPlan,
    NaNBurstInjector,
    StreamGapInjector,
    TruncateWindowInjector,
)


def _stream(n_windows=4, size=1_000, seed=42):
    rng = np.random.default_rng(seed)
    total = n_windows * size
    samples = (rng.normal(size=total) + 1j * rng.normal(size=total)).astype(
        np.complex64
    )
    buffer = SampleBuffer.from_array(samples)
    return [buffer.slice(lo, lo + size) for lo in range(0, total, size)]


class TestValidation:
    def test_rejects_bad_rate(self):
        with pytest.raises(ValueError):
            StreamGapInjector(rate=1.5)

    def test_rejects_nonpositive_gap(self):
        with pytest.raises(ValueError):
            StreamGapInjector(gap_samples=0)

    def test_rejects_nonpositive_burst(self):
        with pytest.raises(ValueError):
            NaNBurstInjector(burst_samples=0)

    def test_rejects_negative_truncate_params(self):
        with pytest.raises(ValueError):
            TruncateWindowInjector(keep=-1)
        with pytest.raises(ValueError):
            TruncateWindowInjector(shift=-1)


class TestStreamGap:
    def test_drops_front_of_selected_window_only(self):
        windows = _stream()
        injector = StreamGapInjector(gap_samples=100, at=(1,))
        out = [injector.apply(i, w) for i, w in enumerate(windows)]
        assert out[1].start_sample == windows[1].start_sample + 100
        assert len(out[1]) == len(windows[1]) - 100
        assert out[1].end_sample == windows[1].end_sample
        for i in (0, 2, 3):
            assert out[i] is windows[i]

    def test_gap_longer_than_window_empties_it(self):
        windows = _stream(size=50)
        injector = StreamGapInjector(gap_samples=1_000, at=(0,))
        out = injector.apply(0, windows[0])
        assert len(out) == 0
        assert out.start_sample == windows[0].end_sample

    def test_event_logged_with_window_bounds(self):
        windows = _stream()
        injector = StreamGapInjector(gap_samples=100, at=(2,))
        for i, w in enumerate(windows):
            injector.apply(i, w)
        assert len(injector.events) == 1
        event = injector.events[0]
        assert event.kind == "stream_gap"
        assert event.window_index == 2
        assert event.start_sample == windows[2].start_sample
        assert event.end_sample == windows[2].end_sample


class TestNaNBurst:
    def test_burst_placed_at_offset(self):
        windows = _stream()
        injector = NaNBurstInjector(burst_samples=64, offset=100, at=(0,))
        out = injector.apply(0, windows[0])
        bad = ~np.isfinite(out.samples)
        assert int(bad.sum()) == 64
        assert bad[100:164].all()

    def test_original_window_not_mutated(self):
        windows = _stream()
        injector = NaNBurstInjector(burst_samples=64, at=(0,))
        injector.apply(0, windows[0])
        assert np.isfinite(windows[0].samples).all()

    def test_inf_value_supported(self):
        windows = _stream()
        injector = NaNBurstInjector(
            burst_samples=8, value=complex("inf"), at=(0,)
        )
        out = injector.apply(0, windows[0])
        assert int(np.isinf(out.samples).sum()) == 8

    def test_burst_clipped_to_window(self):
        windows = _stream(size=100)
        injector = NaNBurstInjector(burst_samples=500, offset=50, at=(0,))
        out = injector.apply(0, windows[0])
        assert int((~np.isfinite(out.samples)).sum()) == 50


class TestTruncate:
    def test_keep_zero_shift_gives_empty_discontiguous_window(self):
        windows = _stream()
        injector = TruncateWindowInjector(keep=0, shift=17, at=(1,))
        out = injector.apply(1, windows[1])
        assert len(out) == 0
        assert out.start_sample == windows[1].start_sample + 17

    def test_keep_preserves_front(self):
        windows = _stream()
        injector = TruncateWindowInjector(keep=100, at=(0,))
        out = injector.apply(0, windows[0])
        assert len(out) == 100
        assert out.start_sample == windows[0].start_sample
        np.testing.assert_array_equal(out.samples, windows[0].samples[:100])


class TestDeterminism:
    def test_same_seed_hits_same_windows(self):
        hits = []
        for _ in range(2):
            injector = NaNBurstInjector(rate=0.3, seed=11)
            for i, w in enumerate(_stream(n_windows=40, size=64)):
                injector.apply(i, w)
            hits.append([e.window_index for e in injector.events])
        assert hits[0] == hits[1]
        assert hits[0]  # the draw actually selected windows

    def test_different_seeds_differ(self):
        hits = []
        for seed in (11, 12):
            injector = NaNBurstInjector(rate=0.3, seed=seed)
            for i, w in enumerate(_stream(n_windows=40, size=64)):
                injector.apply(i, w)
            hits.append([e.window_index for e in injector.events])
        assert hits[0] != hits[1]

    def test_explicit_at_does_not_perturb_rate_draws(self):
        # adding `at` indices must only add hits, never reshuffle the
        # seeded Bernoulli selection of the remaining windows
        def run(at):
            injector = NaNBurstInjector(rate=0.3, seed=5, at=at)
            for i, w in enumerate(_stream(n_windows=40, size=64)):
                injector.apply(i, w)
            return {e.window_index for e in injector.events}

        base = run(())
        with_at = run((0, 1))
        assert with_at == base | {0, 1}


class TestFaultPlan:
    def test_composes_in_order_and_merges_events(self):
        windows = _stream()
        plan = FaultPlan(
            StreamGapInjector(gap_samples=100, at=(1,)),
            NaNBurstInjector(burst_samples=32, at=(2,)),
        )
        out = list(plan.apply(windows))
        assert len(out) == len(windows)
        assert out[1].start_sample == windows[1].start_sample + 100
        assert int((~np.isfinite(out[2].samples)).sum()) == 32
        assert [e.kind for e in plan.events] == ["stream_gap", "nan_burst"]
        assert [e.window_index for e in plan.events] == [1, 2]

    def test_affected_spans_with_margin(self):
        windows = _stream(size=500)
        plan = FaultPlan(StreamGapInjector(gap_samples=10, at=(1,)))
        list(plan.apply(windows))
        (span,) = plan.affected_spans(margin=250)
        assert span == (windows[1].start_sample - 250,
                        windows[1].end_sample + 250)

    def test_emptied_window_skipped_by_later_injectors(self):
        windows = _stream()
        plan = FaultPlan(
            TruncateWindowInjector(keep=0, at=(1,)),
            NaNBurstInjector(burst_samples=32, at=(1,)),
        )
        out = list(plan.apply(windows))
        assert len(out[1]) == 0
        # the NaN injector saw an empty window and stood down
        assert [e.kind for e in plan.events] == ["truncated_window"]

    def test_add_chains(self):
        plan = FaultPlan().add(StreamGapInjector(at=(0,)))
        assert len(plan.injectors) == 1
