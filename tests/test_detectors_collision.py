"""Tests for the collision detector (paper future work, Section 5.1.5)."""

import numpy as np
import pytest

from repro.core.detectors import CollisionDetector
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult, PeakDetector
from repro.dsp.samples import SampleBuffer
from repro.phy.bluetooth import BluetoothModulator, TYPE_DH5
from repro.phy.wifi import WifiModulator
from repro.phy.wifi_mac import build_data_frame
from repro.util.timebase import Timebase

FS = 8e6


def _buffer_with(wave, lead=400, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + 400
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    rx[lead : lead + wave.size] += wave
    buf = SampleBuffer(rx.astype(np.complex64), Timebase(FS))
    history = PeakHistory(FS)
    history.append(lead, lead + wave.size, 1.0, 1.0)
    detection = PeakDetectionResult(
        history=history, noise_floor=noise**2 * 2,
        threshold=noise**2 * 5, total_samples=n,
    )
    return buf, detection


def _collision_wave(power_ratio_db=6.0, seed=1):
    """A wifi packet with a Bluetooth packet keying on halfway through."""
    wifi = WifiModulator(FS).modulate(build_data_frame(1, 2, b"c" * 300), 1.0)
    bt = BluetoothModulator(FS).modulate(TYPE_DH5, bytes(200), clock=9)
    amp = 10 ** (power_ratio_db / 20.0)
    wave = wifi.copy()
    offset = wifi.size // 2
    end = min(offset + bt.size, wave.size)
    wave[offset:end] += amp * bt[: end - offset]
    return wave


class TestCollisionDetector:
    def test_detects_overlap_with_power_step(self):
        wave = _collision_wave(power_ratio_db=6.0)
        buf, det = _buffer_with(wave)
        out = CollisionDetector().classify(det, buf)
        assert len(out) == 1
        assert out[0].protocol == "collision"
        # the step is located near the Bluetooth transmitter keying on
        step = out[0].info["step_sample"]
        assert abs(step - (400 + wave.size // 2)) < 4000

    def test_clean_wifi_not_flagged(self):
        wave = WifiModulator(FS).modulate(build_data_frame(1, 2, b"c" * 300), 1.0)
        buf, det = _buffer_with(wave)
        assert CollisionDetector().classify(det, buf) == []

    def test_clean_bluetooth_not_flagged(self):
        wave = BluetoothModulator(FS).modulate(TYPE_DH5, bytes(200), clock=3)
        buf, det = _buffer_with(wave)
        assert CollisionDetector().classify(det, buf) == []

    def test_equal_power_overlap_not_detected(self):
        # the step heuristic needs a level difference; equal-power
        # collisions are a documented blind spot
        wave = _collision_wave(power_ratio_db=0.0)
        buf, det = _buffer_with(wave)
        out = CollisionDetector().classify(det, buf)
        # +3 dB combined power at overlap onset may or may not trip the
        # 3 dB threshold; we only require no crash and sane output
        assert all(c.protocol == "collision" for c in out)

    def test_requires_buffer(self):
        wave = _collision_wave()
        _, det = _buffer_with(wave)
        with pytest.raises(ValueError):
            CollisionDetector().classify(det, None)

    def test_short_peak_skipped(self):
        wave = _collision_wave()[:600]
        buf, det = _buffer_with(wave)
        assert CollisionDetector().classify(det, buf) == []


class TestEndToEnd:
    def test_rendered_collision_flagged(self):
        from repro import BluetoothL2PingSession, Scenario, WifiPingSession

        # force an overlap: a BT packet scheduled inside a wifi data packet,
        # 8 dB hotter
        scenario = Scenario(duration=0.03, seed=88)
        scenario.add(WifiPingSession(n_pings=1, snr_db=15.0, start=1e-3))
        # address chosen so the hop sequence lands an in-band packet (slot
        # 4, channel 40, t=4.5 ms) inside the wifi data packet
        scenario.add(
            BluetoothL2PingSession(
                n_pings=40, snr_db=23.0, start=2e-3, interval_slots=2,
                address=0x2A96F0,
            )
        )
        trace = scenario.render()
        truth = trace.ground_truth
        collided = [
            t for t in truth.observable("bluetooth") if truth.collided(t)
        ]
        assert collided, "expected a deterministic in-band collision"
        detection = PeakDetector().detect(trace.buffer, noise_floor=trace.noise_power)
        out = CollisionDetector().classify(detection, trace.buffer)
        assert out, "no collision flagged despite ground-truth overlap"
