"""Regression tests for bugs found during development.

Each test pins the specific failure mode so it cannot reappear silently.
"""

import numpy as np
import pytest

from repro import RFDumpMonitor, Scenario, WifiPingSession
from repro.core.detectors.base import Classification
from repro.core.dispatcher import Dispatcher
from repro.core.metadata import Peak


class TestDispatcherAbsoluteBounds:
    """The dispatcher used to clamp absolute peak positions against a
    relative buffer length, silently dropping every range in streamed
    windows whose start_sample exceeded the window length."""

    def test_absolute_window_ranges_survive(self):
        cls = Classification(
            Peak(450_000, 460_000, 1.0, 1.0, index=0), "wifi", "t", 0.9
        )
        ranges = Dispatcher(200).dispatch(
            [cls], end_sample=800_000, start_sample=400_000
        )
        assert ranges["wifi"]
        assert ranges["wifi"][0].start_sample == 450_000

    def test_streamed_windows_decode(self, tmp_path):
        from repro.trace import TraceReader, write_trace

        scenario = Scenario(duration=0.1, seed=33)
        scenario.add(WifiPingSession(n_pings=2, snr_db=20.0, interval=45e-3))
        trace = scenario.render()
        path = tmp_path / "stream.iq"
        write_trace(path, trace.buffer)

        monitor = RFDumpMonitor(protocols=("wifi",))
        packets = []
        for window in TraceReader(path, window_samples=300_000):
            packets.extend(monitor.process(window).packets)
        # both exchanges sit inside (not across) windows; all must decode
        truth = trace.ground_truth.observable("wifi")
        assert len(packets) >= len(truth) - 1


class TestFrequencyDetectorDurationFilter:
    """The Bluetooth frequency detector used to classify a microwave
    oven's swept CW as Bluetooth: single-bin at every instant."""

    def test_microwave_burst_rejected(self):
        from repro.core.detectors import BluetoothFrequencyDetector
        from repro.core.metadata import PeakHistory
        from repro.core.peak_detector import PeakDetectionResult
        from repro.dsp.samples import SampleBuffer
        from repro.phy.microwave import MicrowaveEmitter
        from repro.util.timebase import Timebase

        wave = MicrowaveEmitter().render(8.3e-3, 8e6)
        buf = SampleBuffer(wave, Timebase(8e6))
        history = PeakHistory(8e6)
        history.append(0, wave.size, 1.0, 1.0)
        detection = PeakDetectionResult(
            history=history, noise_floor=1e-4, threshold=3e-4,
            total_samples=wave.size,
        )
        out = BluetoothFrequencyDetector().classify(detection, buf)
        assert out == []


class TestOfdmZeroPayloadFraming:
    """OFDM decoding used to match an empty frame against all-zero
    payloads because crc32(b'') == 0 coincided with zero padding."""

    def test_zero_payload_decodes_exactly(self):
        from repro.phy.ofdm import OfdmModem

        modem = OfdmModem(8e6)
        payload = bytes(100)  # all zeros
        rng = np.random.default_rng(8)
        wave = modem.modulate(payload)
        rx = 0.05 * (
            rng.normal(size=wave.size + 600) + 1j * rng.normal(size=wave.size + 600)
        ).astype(np.complex64)
        rx[300 : 300 + wave.size] += wave
        packet = modem.demodulate(rx)
        assert packet.payload == payload

    def test_truncated_zero_frame_raises(self):
        from repro.errors import DecodeError
        from repro.phy.ofdm import OfdmModem

        modem = OfdmModem(8e6)
        wave = modem.modulate(bytes(100))
        rng = np.random.default_rng(9)
        half = wave[: wave.size // 2]
        rx = 0.05 * (
            rng.normal(size=half.size + 300) + 1j * rng.normal(size=half.size + 300)
        ).astype(np.complex64)
        rx[300:] += half[: rx.size - 300]
        with pytest.raises(DecodeError):
            modem.demodulate(rx)


class TestGfskChannelFilterSensitivity:
    """The GFSK demodulator used to discriminate against full-band noise,
    costing ~9 dB: at 20 dB SNR a DH5 payload took occasional bit errors
    and the whole packet failed its CRC."""

    def test_dh5_robust_at_20db(self):
        from repro.phy.bluetooth import (
            BluetoothDemodulator,
            BluetoothModulator,
            TYPE_DH5,
        )

        mod = BluetoothModulator(8e6)
        dem = BluetoothDemodulator(8e6)
        data = bytes(range(230))
        failures = 0
        for seed in range(5):
            rng = np.random.default_rng(seed)
            wave = mod.modulate(TYPE_DH5, data, clock=seed)
            amp = 10.0  # 20 dB over unit noise
            rx = (
                rng.normal(size=wave.size + 800)
                + 1j * rng.normal(size=wave.size + 800)
            ).astype(np.complex64) / np.sqrt(2)
            rx[400 : 400 + wave.size] += amp * wave
            if dem.try_demodulate(rx) is None:
                failures += 1
        assert failures == 0
