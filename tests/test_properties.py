"""Property-based tests (hypothesis) on core data structures and invariants."""

import numpy as np
import pytest
from hypothesis import given, settings, strategies as st

from repro.dsp.energy import chunk_average_power, moving_average_power
from repro.dsp.phase import phase_derivative
from repro.dsp.resample import fractional_indices, sample_held
from repro.phy import dsss
from repro.phy.fec import (
    hamming1510_decode,
    hamming1510_encode,
    repeat3_decode,
    repeat3_encode,
)
from repro.phy.plcp import header_bits, parse_header
from repro.util.bits import (
    BluetoothWhitener,
    Scrambler80211,
    bits_to_bytes,
    bytes_to_bits,
    crc32_802,
    descramble_stream,
    pack_uint,
    unpack_uint,
)

bits_arrays = st.lists(st.integers(0, 1), min_size=0, max_size=400).map(
    lambda v: np.array(v, dtype=np.uint8)
)


class TestBitsProperties:
    @given(st.binary(max_size=300))
    def test_bytes_bits_round_trip(self, data):
        assert bits_to_bytes(bytes_to_bits(data)) == data

    @given(st.integers(0, 2**32 - 1), st.integers(1, 48))
    def test_pack_unpack(self, value, nbits):
        value %= 1 << nbits
        assert unpack_uint(pack_uint(value, nbits)) == value

    @given(bits_arrays)
    def test_scrambler_round_trip(self, bits):
        tx = Scrambler80211().scramble(bits)
        rx = Scrambler80211().descramble(tx)
        assert np.array_equal(rx, bits)

    @given(bits_arrays)
    def test_vectorized_descramble_matches(self, bits):
        tx = Scrambler80211().scramble(bits)
        slow = Scrambler80211(seed=0).descramble(tx)
        fast = descramble_stream(tx)
        assert np.array_equal(slow[7:], fast[7:])

    @given(bits_arrays, st.integers(0, 63))
    def test_whitener_involution(self, bits, clock):
        once = BluetoothWhitener(clock).process(bits)
        twice = BluetoothWhitener(clock).process(once)
        assert np.array_equal(twice, bits)

    @given(st.binary(min_size=1, max_size=200), st.integers(0, 7),
           st.integers(0, 7))
    def test_crc32_detects_any_single_bit_flip(self, data, byte_frac, bit):
        pos = byte_frac % len(data)
        corrupted = bytearray(data)
        corrupted[pos] ^= 1 << bit
        assert crc32_802(bytes(corrupted)) != crc32_802(data)


class TestFecProperties:
    @given(bits_arrays.filter(lambda b: b.size % 10 == 0))
    def test_hamming_round_trip(self, bits):
        assert np.array_equal(hamming1510_decode(hamming1510_encode(bits)), bits)

    @given(
        st.lists(st.integers(0, 1), min_size=10, max_size=10).map(
            lambda v: np.array(v, dtype=np.uint8)
        ),
        st.integers(0, 14),
    )
    def test_hamming_single_error_corrected(self, bits, pos):
        coded = hamming1510_encode(bits)
        coded[pos] ^= 1
        assert np.array_equal(hamming1510_decode(coded), bits)

    @given(bits_arrays)
    def test_repetition_round_trip(self, bits):
        assert np.array_equal(repeat3_decode(repeat3_encode(bits)), bits)


class TestDsssProperties:
    @given(st.lists(st.integers(0, 1), min_size=2, max_size=120).map(
        lambda v: np.array(v, dtype=np.uint8)
    ))
    def test_dbpsk_differential_round_trip(self, bits):
        symbols = dsss.dbpsk_symbols(bits)
        jumps = np.angle(symbols[1:] * np.conj(symbols[:-1]))
        recovered = dsss.dbpsk_bits_from_jumps(jumps)
        assert np.array_equal(recovered, bits[1:])

    @given(st.lists(st.integers(0, 1), min_size=2, max_size=120)
           .filter(lambda v: len(v) % 2 == 0)
           .map(lambda v: np.array(v, dtype=np.uint8)))
    def test_dqpsk_round_trip(self, bits):
        symbols = dsss.dqpsk_symbols(bits)
        first = np.angle(symbols[0])
        jumps = np.angle(symbols[1:] * np.conj(symbols[:-1]))
        recovered = dsss.dqpsk_bits_from_jumps(np.concatenate([[first], jumps]))
        assert np.array_equal(recovered, bits)

    @given(st.lists(st.integers(0, 1), min_size=1, max_size=60).map(
        lambda v: np.array(v, dtype=np.uint8)
    ))
    def test_waveform_unit_envelope(self, bits):
        wave = dsss.modulate_1mbps(bits, 8e6)
        assert np.allclose(np.abs(wave), 1.0, atol=1e-5)


class TestPlcpProperties:
    @given(st.sampled_from([1.0, 2.0, 5.5, 11.0]), st.integers(14, 2346))
    def test_header_round_trip_exact_length(self, rate, nbytes):
        header = parse_header(header_bits(rate, nbytes))
        assert header.rate_mbps == rate
        assert header.mpdu_bytes == nbytes


class TestDspProperties:
    complex_arrays = st.lists(
        st.tuples(
            st.floats(-10, 10, allow_nan=False),
            st.floats(-10, 10, allow_nan=False),
        ),
        min_size=1,
        max_size=300,
    ).map(lambda v: np.array([complex(a, b) for a, b in v], dtype=np.complex64))

    @given(complex_arrays, st.integers(1, 50))
    def test_moving_average_bounds(self, samples, window):
        # bound in float64: moving_average_power computes |x|^2 at full
        # precision, so a float32-rounded max can sit a ULP *below* it
        power = np.abs(samples.astype(np.complex128)) ** 2
        out = moving_average_power(samples, window)
        assert out.size == samples.size
        assert (out <= power.max() + 1e-6).all()
        assert (out >= -1e-9).all()

    @given(complex_arrays, st.integers(1, 100))
    def test_chunk_average_conserves_energy(self, samples, chunk):
        powers = chunk_average_power(samples, chunk)
        total = 0.0
        for i, p in enumerate(powers):
            n = min(chunk, samples.size - i * chunk)
            total += p * n
        assert total == pytest.approx(float(np.sum(np.abs(samples) ** 2)), rel=1e-4)

    @given(complex_arrays.filter(lambda a: (np.abs(a) > 1e-3).all()))
    def test_phase_derivative_wrapped(self, samples):
        d1 = phase_derivative(samples)
        assert (np.abs(d1) <= np.pi + 1e-9).all()

    @given(st.integers(0, 500), st.floats(0.1, 20), st.floats(0.1, 20))
    @settings(max_examples=50)
    def test_fractional_indices_monotone(self, n, rate_in, rate_out):
        idx = fractional_indices(n, rate_in * 1e6, rate_out * 1e6)
        assert (np.diff(idx) >= 0).all()

    @given(
        st.lists(st.floats(-5, 5, allow_nan=False), min_size=1, max_size=50),
        st.integers(0, 300),
    )
    @settings(max_examples=50)
    def test_sample_held_values_from_input(self, values, n_out):
        values = np.array(values)
        out = sample_held(values, n_out, 11e6, 8e6)
        assert set(out.tolist()) <= set(values.tolist())


class TestPeakDetectorProperties:
    @given(
        st.lists(
            st.tuples(st.integers(0, 80), st.integers(8, 40)),
            min_size=0, max_size=5,
        ),
        st.integers(0, 2**31 - 1),
    )
    @settings(max_examples=25, deadline=None)
    def test_peaks_sorted_and_disjoint(self, burst_spec, seed):
        from repro.core.peak_detector import PeakDetector
        from repro.dsp.samples import SampleBuffer
        from repro.util.timebase import Timebase

        rng = np.random.default_rng(seed)
        n = 20000
        x = np.sqrt(0.5) * (rng.normal(size=n) + 1j * rng.normal(size=n))
        for pos_frac, length_chunks in burst_spec:
            start = pos_frac * 200
            x[start : start + length_chunks * 40] += 8.0
        buf = SampleBuffer(x.astype(np.complex64), Timebase(8e6))
        result = PeakDetector().detect(buf, noise_floor=1.0)
        peaks = list(result.history)
        for a, b in zip(peaks, peaks[1:]):
            assert a.end_sample <= b.start_sample
        for peak in peaks:
            assert 0 <= peak.start_sample < peak.end_sample <= n
            assert peak.peak_power >= peak.mean_power > 0
