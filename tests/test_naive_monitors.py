"""Tests for the naive baseline architectures (repro.core.naive)."""

import pytest

from repro import EnergyNaiveMonitor, NaiveMonitor, RFDumpMonitor


@pytest.fixture(scope="module")
def naive_report(wifi_trace):
    return NaiveMonitor(protocols=("wifi",)).process(wifi_trace.buffer)


@pytest.fixture(scope="module")
def energy_report(wifi_trace):
    return EnergyNaiveMonitor(protocols=("wifi",)).process(wifi_trace.buffer)


class TestNaive:
    def test_decodes_everything(self, naive_report, wifi_trace):
        truth = wifi_trace.ground_truth.observable("wifi")
        assert len(naive_report.packets_for("wifi")) == len(truth)

    def test_forwards_whole_trace(self, naive_report):
        assert naive_report.forwarded_samples("wifi") == naive_report.total_samples

    def test_demodulation_touches_all_samples(self, naive_report):
        touched = naive_report.clock.samples_touched["demodulation"]
        assert touched == naive_report.total_samples

    def test_no_detection_stages(self, naive_report):
        assert "peak_detection" not in naive_report.clock.seconds

    def test_demodulate_false(self, wifi_trace):
        report = NaiveMonitor(protocols=("wifi",), demodulate=False).process(
            wifi_trace.buffer
        )
        assert report.packets == []

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            NaiveMonitor(protocols=("lorawan",))


class TestEnergyNaive:
    def test_decodes_everything(self, energy_report, wifi_trace):
        truth = wifi_trace.ground_truth.observable("wifi")
        assert len(energy_report.packets_for("wifi")) == len(truth)

    def test_forwards_only_active_regions(self, energy_report, wifi_trace):
        forwarded = energy_report.forwarded_samples("wifi")
        busy = wifi_trace.ground_truth.busy_fraction()
        assert forwarded < 2 * busy * energy_report.total_samples + 40000

    def test_energy_filter_stage_recorded(self, energy_report):
        assert "energy_filter" in energy_report.clock.seconds

    def test_cheaper_than_naive(self, naive_report, energy_report):
        # the headline Figure 9 ordering at low utilization
        assert (
            energy_report.clock.seconds["demodulation"]
            < naive_report.clock.seconds["demodulation"]
        )

    def test_margin_chunks_conservative(self, wifi_trace):
        tight = EnergyNaiveMonitor(
            protocols=("wifi",), demodulate=False, margin_chunks=0
        ).process(wifi_trace.buffer)
        wide = EnergyNaiveMonitor(
            protocols=("wifi",), demodulate=False, margin_chunks=2
        ).process(wifi_trace.buffer)
        assert wide.forwarded_samples("wifi") > tight.forwarded_samples("wifi")


class TestArchitectureOrdering:
    """The central efficiency claim, asserted on the samples-touched cost
    model (deterministic, unlike wall-clock)."""

    def test_rfdump_forwards_least(self, wifi_trace, naive_report, energy_report):
        rfdump = RFDumpMonitor(protocols=("wifi",)).process(wifi_trace.buffer)
        n_naive = naive_report.clock.samples_touched["demodulation"]
        n_energy = energy_report.clock.samples_touched["demodulation"]
        n_rfdump = rfdump.clock.samples_touched["demodulation"]
        assert n_rfdump <= n_energy <= n_naive
        # RFDump forwards roughly the busy fraction of the trace
        busy = wifi_trace.ground_truth.busy_fraction()
        assert n_rfdump <= 1.2 * busy * n_naive + 40000
