"""Shard failure domains: broker error policy, breaker trips, rebalance.

Killing one shard with the fault-injection harness must trip the
broker's per-shard circuit breaker, reassign the dead shard's sub-bands
to a healthy neighbor, and let the remaining shards complete the band —
with every degradation counted and surfaced.
"""

import pytest

from repro.analysis.decoders import PacketRecord
from repro.core.config import MonitorConfig
from repro.core.shards import ShardBroker, merge_classifications, merge_packets
from repro.core.streaming import StreamingMonitor
from repro.errors import ShardCrashError
from repro.faults.components import CrashingDetector, InjectedFault
from repro.faults.harness import preset_windows
from repro.obs import Observability

WINDOW = 160_000
OVERLAP = 48_000


@pytest.fixture(scope="module")
def windows():
    return preset_windows("mix", duration=0.08, window_samples=WINDOW, seed=7)


@pytest.fixture(scope="module")
def serial(windows):
    monitor = StreamingMonitor(config=MonitorConfig(), overlap=OVERLAP)
    for window in windows:
        monitor.process(window)
    monitor.flush()
    return monitor


def _key(p):
    return (p.start_sample, p.end_sample, p.protocol, p.decoder, p.channel)


def _kill_shard(broker, index):
    """Make shard ``index`` crash on every window: its inner monitor runs
    the legacy policy, so the injected detector fault propagates out of
    the worker and lands on the broker's policy seam."""
    broker.workers[index].monitor.monitor.detectors.append(
        CrashingDetector(at=None)
    )


class TestRebalance:
    def test_killed_shard_rebalances_and_band_completes(self, windows, serial):
        obs = Observability()
        broker = ShardBroker(config=MonitorConfig(shards=4, obs=obs),
                             overlap=OVERLAP, on_error="degrade",
                             breaker_threshold=1)
        _kill_shard(broker, 1)
        for window in windows:
            broker.process(window)
        broker.flush()

        assert broker.rebalances == 1
        assert broker.dead_shards == (1,)
        assert broker.healthy_shards == (0, 2, 3)
        # shard1's sub-bands went to its nearest healthy neighbor (tie
        # between 0 and 2 breaks low), and the band is fully covered
        assert sorted(broker.owned_channels(0)) == [0, 1, 2, 3]
        assert broker.owned_channels(1) == frozenset()
        covered = set()
        for k in broker.healthy_shards:
            covered |= broker.owned_channels(k)
        assert sorted(covered) == list(range(8))

        # the survivors completed the band: no spurious packets, and
        # every window after the trip decodes exactly the serial output
        serial_keys = [_key(p) for p in serial.packets]
        merged_keys = [_key(p) for p in broker.packets]
        assert set(merged_keys) <= set(serial_keys)
        assert merged_keys == sorted(set(merged_keys) & set(serial_keys))
        after = windows[0].end_sample
        assert [k for k in merged_keys if k[0] >= after] == \
               [k for k in serial_keys if k[0] >= after]

        # the degradation is counted and surfaced
        trip = [e for e in broker.errors if e.error == "CircuitBreakerOpen"]
        assert len(trip) == 1
        assert "rebalanced" in trip[0].action
        assert trip[0].component == "shard1"
        assert obs.registry.value("rfdump_shard_failures_total",
                                  shard="shard1") == 1
        assert obs.registry.value("rfdump_shard_rebalances_total") == 1
        assert obs.registry.value("rfdump_shard_owned_channels",
                                  shard="shard0") == 4
        assert obs.registry.value("rfdump_shard_owned_channels",
                                  shard="shard1") == 0
        assert obs.registry.value("rfdump_shard_healthy", shard="shard1") == 0
        assert obs.registry.value("rfdump_shard_healthy", shard="shard0") == 1

    def test_skip_policy_counts_until_threshold(self, windows):
        broker = ShardBroker(config=MonitorConfig(shards=2), overlap=OVERLAP,
                             on_error="skip", breaker_threshold=3)
        _kill_shard(broker, 0)
        for window in windows[:2]:
            broker.process(window)
        # two failures recorded, breaker (threshold 3) not yet tripped
        assert broker.workers[0].failures == 2
        assert broker.rebalances == 0
        assert broker.healthy_shards == (0, 1)
        broker.process(windows[2])
        assert broker.rebalances == 1
        assert broker.dead_shards == (0,)
        assert sorted(broker.owned_channels(1)) == list(range(8))

    def test_legacy_and_raise_policies_surface_the_crash(self, windows):
        for policy in (None, "raise"):
            broker = ShardBroker(config=MonitorConfig(shards=2),
                                 overlap=OVERLAP, on_error=policy)
            _kill_shard(broker, 1)
            with pytest.raises(ShardCrashError) as err:
                broker.process(windows[0])
            assert err.value.shard == "shard1"
            assert isinstance(err.value.__cause__, InjectedFault)

    def test_policy_inherited_from_config(self, windows):
        broker = ShardBroker(config=MonitorConfig(shards=2, on_error="raise"),
                             overlap=OVERLAP)
        assert broker.on_error == "raise"

    def test_all_shards_dead_yields_empty_reports(self, windows):
        broker = ShardBroker(config=MonitorConfig(shards=2), overlap=OVERLAP,
                             on_error="degrade", breaker_threshold=1)
        _kill_shard(broker, 0)
        _kill_shard(broker, 1)
        first = broker.process(windows[0])
        assert broker.dead_shards == (0, 1)
        assert first.packets == []
        assert len(first.errors) >= 2
        # the outage is terminal but never an exception: later windows
        # produce empty reports and the run still flushes cleanly
        later = broker.process(windows[1])
        assert later.packets == []
        broker.flush()
        assert broker.rebalances == 1  # the second trip had no heir
        retired = [e for e in broker.errors if "no healthy shard" in e.action]
        assert len(retired) == 1

    def test_retired_shards_output_is_kept(self, windows, serial):
        # a shard killed mid-stream keeps what it completed before dying:
        # results it alone owned stay in the band-wide accumulation
        broker = ShardBroker(config=MonitorConfig(shards=4), overlap=OVERLAP,
                             on_error="degrade", breaker_threshold=1)
        kill_after = 2
        broker.workers[1].monitor.monitor.detectors.append(
            CrashingDetector(at=tuple(range(kill_after, 100)))
        )
        for window in windows:
            broker.process(window)
        broker.flush()
        assert broker.dead_shards == (1,)
        serial_keys = [_key(p) for p in serial.packets]
        merged_keys = [_key(p) for p in broker.packets]
        assert set(merged_keys) <= set(serial_keys)
        assert len(merged_keys) == len(set(merged_keys))


class TestMergeHelpers:
    def _packet(self, start, protocol="wifi", decoder="d", channel=None):
        return PacketRecord(protocol=protocol, start_sample=start,
                            end_sample=start + 100, ok=True, decoder=decoder,
                            channel=channel)

    def test_merge_packets_dedups_and_orders(self):
        a, b, c = (self._packet(s) for s in (300, 100, 200))
        dup = self._packet(100)
        merged = merge_packets([[a, b], [dup, c]])
        assert [p.start_sample for p in merged] == [100, 200, 300]

    def test_merge_packets_first_copy_wins(self):
        first = self._packet(100)
        second = self._packet(100)
        merged = merge_packets([[first], [second]])
        assert merged[0] is first

    def test_merge_packets_distinguishes_channels(self):
        a = self._packet(100, protocol="bluetooth", channel=38)
        b = self._packet(100, protocol="bluetooth", channel=39)
        assert len(merge_packets([[a], [b]])) == 2

    def test_merge_classifications_dedups(self, wifi_report):
        sample = list(wifi_report.classifications)
        assert sample  # fixture sanity
        merged = merge_classifications([sample, list(reversed(sample))])
        assert len(merged) == len(sample)
        assert sorted(
            (c.peak.start_sample, c.detector) for c in merged
        ) == sorted((c.peak.start_sample, c.detector) for c in sample)

    def test_merge_empty(self):
        assert merge_packets([]) == []
        assert merge_classifications([[], []]) == []
