"""Tests for the PacketEvent contract and Monitor.events()."""

import dataclasses
import json

import pytest

from repro import MonitorConfig
from repro.core import make_monitor
from repro.core.events import (
    EVENT_SCHEMA_VERSION,
    PacketEvent,
    PacketMeta,
    events_from_records,
    read_events,
)
from repro.faults.harness import split_windows


def _config(trace, **overrides) -> MonitorConfig:
    return MonitorConfig(
        sample_rate=trace.sample_rate,
        center_freq=trace.center_freq,
        protocols=("wifi",),
        **overrides,
    )


def _windows(trace, n=4):
    return split_windows(trace.buffer, max(len(trace.buffer) // n, 1))


class TestPacketEventContract:
    def _event(self, seq=0):
        meta = PacketMeta(
            timestamp=0.25, sample_rate=8e6, start_sample=2_000_000,
            end_sample=2_000_800, channel=6, snr_db=19.5,
        )
        return PacketEvent(
            seq=seq, protocol="wifi", decoder="wifi", ok=True,
            payload_size=42, summary="icmp echo", meta=meta,
        )

    def test_frozen(self):
        event = self._event()
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.seq = 7
        with pytest.raises(dataclasses.FrozenInstanceError):
            event.meta.snr_db = 0.0

    def test_wire_form_is_canonical(self):
        line = self._event().to_json()
        payload = json.loads(line)
        assert payload["v"] == EVENT_SCHEMA_VERSION
        # sorted keys + compact separators: equality is line equality
        assert line == json.dumps(payload, sort_keys=True,
                                  separators=(",", ":"))
        assert "\n" not in line

    def test_round_trip(self):
        event = self._event(seq=3)
        assert PacketEvent.from_json(event.to_json()) == event

    def test_unknown_schema_version_rejected(self):
        payload = self._event().to_dict()
        payload["v"] = EVENT_SCHEMA_VERSION + 1
        with pytest.raises(ValueError, match="schema"):
            PacketEvent.from_dict(payload)

    def test_meta_duration(self):
        meta = self._event().meta
        assert meta.duration == pytest.approx(800 / 8e6)

    def test_key_excludes_seq(self):
        assert self._event(seq=0).key() == self._event(seq=99).key()

    def test_read_events_skips_blank_lines(self):
        lines = [self._event(0).to_json(), "", self._event(1).to_json(), "  "]
        events = list(read_events(lines))
        assert [e.seq for e in events] == [0, 1]


class TestEventsFromRecords:
    def test_matches_report_packets(self, wifi_report, wifi_trace):
        events = events_from_records(
            wifi_report.packets, wifi_trace.sample_rate)
        assert len(events) == len(wifi_report.packets)
        assert [e.seq for e in events] == list(range(len(events)))
        for event, record in zip(events, wifi_report.packets):
            assert event.protocol == record.protocol
            assert event.payload_size == record.payload_size
            assert event.meta.start_sample == record.start_sample
            assert event.meta.timestamp == pytest.approx(
                record.start_sample / wifi_trace.sample_rate)

    def test_start_seq_offset(self, wifi_report, wifi_trace):
        events = events_from_records(
            wifi_report.packets, wifi_trace.sample_rate, start_seq=10)
        assert events[0].seq == 10

    def test_rf_metadata_carried(self, wifi_report, wifi_trace):
        events = events_from_records(
            wifi_report.packets, wifi_trace.sample_rate)
        assert all(e.meta.snr_db is not None for e in events)
        assert all(e.meta.rssi_db is not None for e in events)


class TestMonitorEvents:
    """Every monitor family exposes the same events() contract."""

    def test_one_shot_monitor(self, wifi_trace):
        with make_monitor("rfdump", _config(wifi_trace)) as monitor:
            events = list(monitor.events([wifi_trace.buffer]))
        assert events
        assert [e.seq for e in events] == list(range(len(events)))
        assert all(e.protocol == "wifi" for e in events)

    def test_streaming_matches_accumulated_packets(self, wifi_trace):
        with make_monitor("streaming", _config(wifi_trace)) as monitor:
            events = list(monitor.events(_windows(wifi_trace)))
            packets = monitor.packets
        expected = events_from_records(packets, wifi_trace.sample_rate)
        assert [e.to_json() for e in events] == [e.to_json() for e in expected]

    def test_streaming_events_are_incremental(self, wifi_trace):
        """events() yields as packets become final, not in one burst
        after the final flush."""
        windows = _windows(wifi_trace, n=8)
        fed = 0

        def feed():
            nonlocal fed
            for window in windows:
                fed += 1
                yield window

        emitted_mid_stream = False
        events = []
        with make_monitor("streaming", _config(wifi_trace)) as monitor:
            for event in monitor.events(feed()):
                events.append(event)
                if fed < len(windows):
                    emitted_mid_stream = True
        assert len(events) >= 2
        assert emitted_mid_stream

    def test_sharded_equals_streaming(self, wifi_trace):
        windows = _windows(wifi_trace)
        with make_monitor("streaming", _config(wifi_trace)) as streaming:
            expected = [e.to_json() for e in streaming.events(windows)]
        with make_monitor("sharded", _config(wifi_trace, shards=2)) as broker:
            actual = [e.to_json() for e in broker.events(windows)]
        assert actual == expected
        assert expected

    def test_naive_monitor_events(self, wifi_trace):
        with make_monitor("naive", _config(wifi_trace)) as monitor:
            events = list(monitor.events(_windows(wifi_trace, n=2)))
        assert all(isinstance(e, PacketEvent) for e in events)
        assert [e.seq for e in events] == list(range(len(events)))

    def test_start_seq_threads_through(self, wifi_trace):
        with make_monitor("rfdump", _config(wifi_trace)) as monitor:
            events = list(monitor.events([wifi_trace.buffer], start_seq=5))
        assert events[0].seq == 5
