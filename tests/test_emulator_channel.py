"""Tests for repro.emulator.channel."""

import numpy as np
import pytest

from repro.emulator.channel import ChannelModel, apply_freq_offset


class TestChannelModel:
    def test_awgn_power(self, rng):
        model = ChannelModel(noise_power=2.0)
        noise = model.awgn(100000, rng)
        assert np.mean(np.abs(noise) ** 2) == pytest.approx(2.0, rel=0.05)

    def test_awgn_zero_mean(self, rng):
        noise = ChannelModel().awgn(100000, rng)
        assert abs(np.mean(noise)) < 0.05

    def test_amplitude_for_snr(self):
        model = ChannelModel(noise_power=1.0)
        amp = model.amplitude_for_snr(20.0)
        assert amp**2 == pytest.approx(100.0)

    def test_amplitude_accounts_for_waveform_power(self):
        model = ChannelModel(noise_power=1.0)
        amp = model.amplitude_for_snr(0.0, waveform_power=4.0)
        assert amp == pytest.approx(0.5)

    def test_rejects_nonpositive_noise(self):
        with pytest.raises(ValueError):
            ChannelModel(noise_power=0.0)


class TestFreqOffset:
    def test_zero_offset_identity(self):
        x = np.ones(100, dtype=np.complex64)
        assert apply_freq_offset(x, 0.0, 8e6) is x

    def test_offset_moves_tone(self):
        x = np.ones(8000, dtype=np.complex64)
        shifted = apply_freq_offset(x, 1e6, 8e6)
        spectrum = np.abs(np.fft.fft(shifted))
        peak = np.fft.fftfreq(8000, 1 / 8e6)[np.argmax(spectrum)]
        assert peak == pytest.approx(1e6, abs=2e3)

    def test_power_preserved(self, rng):
        x = (rng.normal(size=1000) + 1j * rng.normal(size=1000)).astype(np.complex64)
        shifted = apply_freq_offset(x, 2.5e6, 8e6)
        assert np.mean(np.abs(shifted) ** 2) == pytest.approx(
            float(np.mean(np.abs(x) ** 2)), rel=1e-5
        )

    def test_start_sample_continuity(self):
        x = np.ones(200, dtype=np.complex64)
        whole = apply_freq_offset(x, 1.1e6, 8e6)
        parts = np.concatenate([
            apply_freq_offset(x[:100], 1.1e6, 8e6, start_sample=0),
            apply_freq_offset(x[100:], 1.1e6, 8e6, start_sample=100),
        ])
        assert np.allclose(whole, parts, atol=1e-5)
