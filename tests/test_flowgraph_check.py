"""Tests for FlowGraph.check(): static wiring validation before streaming."""

import numpy as np
import pytest

from repro.dsp.samples import SampleBuffer
from repro.errors import FlowGraphError, SchedulerError
from repro.flowgraph import (
    ITEM_CHUNK,
    ITEM_DETECTION,
    ITEM_PACKET,
    Block,
    CollectSink,
    FlowGraph,
    FunctionBlock,
    IOSignature,
    SinkBlock,
    SourceBlock,
    build_rfdump_graph,
)
from repro.util.timebase import Timebase


class ChunkSource(SourceBlock):
    out_sig = IOSignature(ITEM_CHUNK, dtype=np.complex64)

    def items(self):
        return iter([(0, np.zeros(4, dtype=np.complex64))])


class ExplodingSource(SourceBlock):
    """A source whose stream must never start on a mis-wired graph."""

    out_sig = IOSignature(ITEM_CHUNK, dtype=np.complex64)

    def items(self):
        raise AssertionError("scheduler streamed a graph that should not run")


class PacketEater(Block):
    in_sig = IOSignature(ITEM_PACKET)
    out_sig = IOSignature(ITEM_PACKET)

    def work(self, item):
        return [item]


class TestSignatures:
    def test_kind_mismatch_names_both_blocks(self):
        src = ChunkSource("chunks")
        eater = PacketEater("eater")
        sink = CollectSink()
        graph = FlowGraph().chain(src, eater, sink)
        with pytest.raises(FlowGraphError) as exc:
            graph.check()
        assert "'chunks'" in str(exc.value)
        assert "'eater'" in str(exc.value)
        assert "mismatch" in str(exc.value)

    def test_dtype_mismatch_rejected(self):
        class Wide(Block):
            in_sig = IOSignature(ITEM_CHUNK, dtype=np.complex128)
            out_sig = IOSignature(ITEM_CHUNK, dtype=np.complex128)

            def work(self, item):
                return [item]

        graph = FlowGraph().chain(ChunkSource("c64"), Wide("c128"), CollectSink())
        with pytest.raises(FlowGraphError, match="'c64'.*'c128'|'c128'.*'c64'"):
            graph.check()

    def test_any_signature_is_compatible(self):
        graph = FlowGraph().chain(
            ChunkSource(), FunctionBlock(lambda x: x), CollectSink()
        )
        assert graph.check() is graph

    def test_wildcard_dtype_accepts_concrete_dtype(self):
        class AnyChunk(SinkBlock):
            in_sig = IOSignature(ITEM_CHUNK)  # any dtype

            def consume(self, item):
                pass

        FlowGraph().chain(ChunkSource(), AnyChunk()).check()


class TestPorts:
    def test_unconnected_input_port(self):
        graph = FlowGraph().chain(ChunkSource(), CollectSink())
        orphan = CollectSink("orphan")
        graph.add(orphan)
        with pytest.raises(FlowGraphError, match="input port.*'orphan'.*unconnected"):
            graph.check()

    def test_unconnected_output_port(self):
        graph = FlowGraph()
        graph.connect(ChunkSource(), FunctionBlock(lambda x: x, "dangling"))
        with pytest.raises(FlowGraphError, match="output port.*'dangling'.*unconnected"):
            graph.check()

    def test_source_as_destination_names_both_blocks(self):
        graph = FlowGraph()
        fn = FunctionBlock(lambda x: x, "upstream")
        with pytest.raises(FlowGraphError) as exc:
            graph.connect(fn, ChunkSource("the-source"))
        assert "'upstream'" in str(exc.value)
        assert "'the-source'" in str(exc.value)

    def test_no_source_is_scheduler_error(self):
        graph = FlowGraph()
        graph.add(CollectSink())
        with pytest.raises(SchedulerError):
            graph.check()


class TestCycles:
    def test_cycle_error_names_blocks(self):
        a = FunctionBlock(lambda x: x, "a")
        b = FunctionBlock(lambda x: x, "b")
        graph = FlowGraph()
        graph.connect(a, b)
        with pytest.raises(FlowGraphError) as exc:
            graph.connect(b, a)
        message = str(exc.value)
        assert "cycle" in message
        assert "'a'" in message and "'b'" in message


class TestRunValidates:
    def test_miswired_graph_fails_before_streaming(self):
        src = ExplodingSource("chunks")
        graph = FlowGraph().chain(src, PacketEater("eater"), CollectSink())
        # check() runs first: the wiring error surfaces, items() never does
        with pytest.raises(FlowGraphError, match="mismatch"):
            graph.run()

    def test_well_wired_graph_still_runs(self):
        sink = CollectSink()
        graph = FlowGraph().chain(ChunkSource(), sink)
        graph.run()
        assert len(sink.items) == 1

    def test_rfdump_graph_passes_check(self):
        rng = np.random.default_rng(0)
        noise = 0.01 * (rng.normal(size=4096) + 1j * rng.normal(size=4096))
        buffer = SampleBuffer(noise.astype(np.complex64), Timebase(8e6))
        graph, _, _ = build_rfdump_graph(buffer)
        assert graph.check() is graph

    def test_rfdump_graph_without_demod_passes_check(self):
        rng = np.random.default_rng(1)
        noise = 0.01 * (rng.normal(size=4096) + 1j * rng.normal(size=4096))
        buffer = SampleBuffer(noise.astype(np.complex64), Timebase(8e6))
        graph, _, _ = build_rfdump_graph(buffer, demodulate=False)
        assert graph.check() is graph
