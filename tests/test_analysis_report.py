"""Tests for repro.analysis.report rendering."""

from repro.analysis.decoders import PacketRecord
from repro.analysis.report import render_packet_log, render_summary


class TestPacketLog:
    def test_sorted_by_time(self):
        records = [
            PacketRecord("wifi", 16000, 20000, True, "d", rate_mbps=1.0),
            PacketRecord("bluetooth", 8000, 12000, True, "d", channel=40),
        ]
        log = render_packet_log(records, 8e6)
        lines = log.splitlines()
        assert "bluetooth" in lines[0]
        assert "wifi" in lines[1]

    def test_fields_present(self):
        rec = PacketRecord(
            "bluetooth", 8000, 12000, True, "d", payload_size=339,
            rate_mbps=1.0, channel=42,
        )
        log = render_packet_log([rec], 8e6)
        assert "ch 42" in log
        assert "339 B" in log
        assert "1.000 ms" in log

    def test_wifi_details(self, wifi_report):
        log = render_packet_log(wifi_report.packets, 8e6)
        assert "ACK" in log
        assert "data seq=" in log

    def test_empty(self):
        assert render_packet_log([], 8e6) == ""


class TestSummary:
    def test_table_structure(self):
        rows = [{"a": 1, "b": 2.5}, {"a": 10, "b": None}]
        table = render_summary("Title", rows, ["a", "b"])
        lines = table.splitlines()
        assert lines[0] == "Title"
        assert "a" in lines[1] and "b" in lines[1]
        assert len(lines) == 5
        assert "-" in lines[-1] or "10" in lines[-1]

    def test_empty_rows(self):
        table = render_summary("T", [], ["col"])
        assert "col" in table

    def test_float_formatting(self):
        table = render_summary("T", [{"x": 0.123456}], ["x"])
        assert "0.1235" in table
