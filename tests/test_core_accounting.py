"""Tests for repro.core.accounting."""

import time

import pytest

from repro.core.accounting import StageClock


class TestStageClock:
    def test_accumulates_time(self):
        clock = StageClock()
        with clock.stage("work"):
            time.sleep(0.01)
        with clock.stage("work"):
            time.sleep(0.01)
        assert clock.seconds["work"] >= 0.02

    def test_total(self):
        clock = StageClock()
        with clock.stage("a"):
            pass
        with clock.stage("b"):
            pass
        assert clock.total_seconds() == pytest.approx(
            clock.seconds["a"] + clock.seconds["b"]
        )

    def test_cpu_over_realtime(self):
        clock = StageClock(seconds={"demod": 0.5})
        assert clock.cpu_over_realtime(0.25) == pytest.approx(2.0)
        assert clock.cpu_over_realtime(0.25, "demod") == pytest.approx(2.0)
        assert clock.cpu_over_realtime(0.25, "absent") == 0.0

    def test_rejects_bad_duration(self):
        with pytest.raises(ValueError):
            StageClock().cpu_over_realtime(0.0)

    def test_exception_still_recorded(self):
        clock = StageClock()
        with pytest.raises(RuntimeError):
            with clock.stage("boom"):
                raise RuntimeError()
        assert "boom" in clock.seconds

    def test_samples_touched(self):
        clock = StageClock()
        clock.touch("demod", 100)
        clock.touch("demod", 50)
        assert clock.samples_touched["demod"] == 150

    def test_merged(self):
        a = StageClock(seconds={"x": 1.0}, samples_touched={"x": 10})
        b = StageClock(seconds={"x": 0.5, "y": 2.0}, samples_touched={"y": 5})
        merged = a.merged(b)
        assert merged.seconds == {"x": 1.5, "y": 2.0}
        assert merged.samples_touched == {"x": 10, "y": 5}
        # originals untouched
        assert a.seconds == {"x": 1.0}
