"""Stream-level faults through the streaming monitor, per error policy.

The acceptance bar: under each fault class the monitor completes in
degrade mode with nonzero degradation counters and produces identical
packets on the unaffected windows, while raise mode surfaces the fault
as its typed :class:`~repro.errors.RFDumpError` subclass.
"""

import numpy as np
import pytest

from repro.errors import RFDumpError, SampleIntegrityError, StreamGapError
from repro.faults import (
    FaultPlan,
    NaNBurstInjector,
    StreamGapInjector,
    TruncateWindowInjector,
    preset_windows,
    run_faulted,
)
from repro.obs import Observability

WINDOW = 160_000
OVERLAP = 48_000


@pytest.fixture(scope="module")
def windows():
    return preset_windows(
        "wifi", duration=0.08, window_samples=WINDOW, seed=3
    )


@pytest.fixture(scope="module")
def clean(windows):
    return run_faulted(windows, protocols=("wifi",), overlap=OVERLAP)


def _key(p):
    return (p.protocol, p.start_sample, p.end_sample, p.ok, p.decoder,
            p.payload_size, p.rate_mbps, p.channel)


def _outside(packets, spans):
    def affected(p):
        return any(p.start_sample < hi and p.end_sample > lo
                   for lo, hi in spans)

    return sorted(_key(p) for p in packets if not affected(p))


class TestStreamGap:
    def _plan(self):
        return FaultPlan(StreamGapInjector(gap_samples=5_000, at=(2,)))

    def test_degrade_completes_and_counts(self, windows, clean):
        obs = Observability()
        plan = self._plan()
        run = run_faulted(windows, plan, on_error="degrade",
                          overlap=OVERLAP, protocols=("wifi",), obs=obs)
        monitor = run.monitor
        assert monitor.gaps == 1
        assert monitor.lost_samples == 5_000
        (record,) = [e for e in monitor.errors
                     if e.error == "StreamGapError"]
        assert record.action == "resync"
        assert record.stage == "stream"
        reg = obs.registry
        assert reg.value("rfdump_stream_gaps_total") == 1
        assert reg.value("rfdump_stream_gap_lost_samples_total") == 5_000
        # unaffected windows are packet-identical to the fault-free run
        spans = plan.affected_spans(margin=OVERLAP)
        assert _outside(run.packets, spans) == _outside(clean.packets, spans)
        assert _outside(clean.packets, spans)  # comparison is not vacuous

    def test_gap_errors_ride_on_window_report(self, windows):
        run = run_faulted(windows, self._plan(), on_error="degrade",
                          overlap=OVERLAP, protocols=("wifi",))
        faulted_report = run.reports[2]
        assert faulted_report.degraded
        assert faulted_report.last_error.error == "StreamGapError"

    def test_raise_mode_surfaces_typed_error(self, windows):
        with pytest.raises(StreamGapError) as excinfo:
            run_faulted(windows, self._plan(), on_error="raise",
                        overlap=OVERLAP, protocols=("wifi",))
        exc = excinfo.value
        assert isinstance(exc, RFDumpError)
        assert isinstance(exc, ValueError)  # legacy contract preserved
        assert exc.gap_samples == 5_000

    def test_legacy_default_still_raises(self, windows):
        with pytest.raises(ValueError):
            run_faulted(windows, self._plan(),
                        overlap=OVERLAP, protocols=("wifi",))


class TestNaNBurst:
    def _plan(self, burst=512):
        return FaultPlan(
            NaNBurstInjector(burst_samples=burst, offset=10_000, at=(1,))
        )

    def test_degrade_sanitizes_and_counts(self, windows, clean):
        obs = Observability()
        plan = self._plan()
        run = run_faulted(windows, plan, on_error="degrade",
                          overlap=OVERLAP, protocols=("wifi",), obs=obs)
        (record,) = [e for e in run.monitor.errors
                     if e.error == "SampleIntegrityError"]
        assert record.action == "sanitized"
        assert obs.registry.value(
            "rfdump_stream_nonfinite_samples_total"
        ) == 512
        assert run.monitor.lost_samples == 0  # sanitized, not dropped
        spans = plan.affected_spans(margin=OVERLAP)
        assert _outside(run.packets, spans) == _outside(clean.packets, spans)

    def test_raise_mode_surfaces_integrity_error(self, windows):
        with pytest.raises(SampleIntegrityError) as excinfo:
            run_faulted(windows, self._plan(), on_error="raise",
                        overlap=OVERLAP, protocols=("wifi",))
        assert isinstance(excinfo.value, RFDumpError)
        assert excinfo.value.bad_samples == 512

    def test_skip_mode_drops_window_without_gap(self, windows, clean):
        obs = Observability()
        plan = self._plan()
        run = run_faulted(windows, plan, on_error="skip",
                          overlap=OVERLAP, protocols=("wifi",), obs=obs)
        monitor = run.monitor
        assert monitor.gaps == 0  # the dropped window leaves no gap behind
        assert monitor.lost_samples == WINDOW
        (record,) = monitor.errors
        assert record.action == "skipped"
        assert obs.registry.value(
            "rfdump_stream_windows_skipped_total"
        ) == 1
        # the whole skipped window is affected; the rest must match
        spans = [(windows[1].start_sample - OVERLAP,
                  windows[1].end_sample + OVERLAP)]
        assert _outside(run.packets, spans) == _outside(clean.packets, spans)

    @pytest.mark.filterwarnings("ignore::RuntimeWarning")
    def test_noise_floor_survives_nan_in_first_window_by_default(
        self, windows, clean
    ):
        # satellite: a NaN burst in the very first window poisons the
        # noise-floor estimate (percentile over NaN), and the carried
        # value would disable peak detection for the rest of the stream.
        # Even in legacy mode the non-finite estimate must be discarded
        # so the next window re-estimates.
        obs = Observability()
        plan = FaultPlan(
            NaNBurstInjector(burst_samples=5_000, offset=10_000, at=(0,))
        )
        run = run_faulted(windows, plan, overlap=OVERLAP,
                          protocols=("wifi",), obs=obs)
        assert obs.registry.value(
            "rfdump_stream_nonfinite_noise_floor_total"
        ) == 1
        floor = run.monitor._noise_floor
        assert floor is not None and np.isfinite(floor)
        # detection recovered: later windows still decode their packets
        spans = plan.affected_spans(margin=OVERLAP)
        assert _outside(run.packets, spans) == _outside(clean.packets, spans)


class TestEmptyDiscontiguousWindow:
    def test_degrade_absorbs_emptied_window(self, windows, clean):
        # keep=0/shift makes window 1 empty *and* discontiguous; the gap
        # then surfaces at window 2 and degrade mode resyncs across it
        obs = Observability()
        plan = FaultPlan(TruncateWindowInjector(keep=0, shift=17, at=(1,)))
        run = run_faulted(windows, plan, on_error="degrade",
                          overlap=OVERLAP, protocols=("wifi",), obs=obs)
        monitor = run.monitor
        assert monitor.gaps == 1
        assert monitor.lost_samples == WINDOW
        assert run.reports[1].total_samples == 0
        assert obs.registry.value("rfdump_stream_gaps_total") == 1
        spans = [(windows[1].start_sample - OVERLAP,
                  windows[1].end_sample + OVERLAP)]
        assert _outside(run.packets, spans) == _outside(clean.packets, spans)

    def test_empty_window_itself_never_raises(self, windows):
        # satellite regression: the empty window early-returns before the
        # continuity check in every mode, including raise
        plan = FaultPlan(TruncateWindowInjector(keep=0, shift=17, at=(3,)))
        run = run_faulted(windows[:4], plan, on_error="raise",
                          overlap=OVERLAP, protocols=("wifi",))
        assert run.reports[3].total_samples == 0


class TestComposedFaults:
    def test_gap_and_nan_burst_together(self, windows, clean):
        obs = Observability()
        plan = FaultPlan(
            StreamGapInjector(gap_samples=2_000, at=(1,)),
            NaNBurstInjector(burst_samples=256, offset=40_000, at=(2,)),
        )
        run = run_faulted(windows, plan, on_error="degrade",
                          overlap=OVERLAP, protocols=("wifi",), obs=obs)
        monitor = run.monitor
        assert monitor.gaps == 1
        assert monitor.lost_samples == 2_000
        assert {e.error for e in monitor.errors} == {
            "StreamGapError", "SampleIntegrityError"
        }
        spans = plan.affected_spans(margin=OVERLAP)
        assert _outside(run.packets, spans) == _outside(clean.packets, spans)
