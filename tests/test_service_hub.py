"""Tests for the EventHub fan-out: bounded queues, drop policies, replay."""

import pytest

from repro.core.events import PacketEvent, PacketMeta
from repro.service.hub import (
    DISCONNECTED,
    END_OF_STREAM,
    POLICY_DISCONNECT,
    POLICY_DROP_NEW,
    POLICY_DROP_OLD,
    EventHub,
    SubscriberQueue,
    slow_consumer_policy,
)


def _event(seq: int) -> PacketEvent:
    meta = PacketMeta(
        timestamp=seq * 1e-3, sample_rate=8e6,
        start_sample=seq * 8000, end_sample=seq * 8000 + 800,
    )
    return PacketEvent(seq=seq, protocol="wifi", decoder="wifi", ok=True,
                       payload_size=10, summary="", meta=meta)


class TestPolicyMapping:
    def test_error_policy_taxonomy(self):
        assert slow_consumer_policy("raise") == POLICY_DISCONNECT
        assert slow_consumer_policy("skip") == POLICY_DROP_NEW
        assert slow_consumer_policy("degrade") == POLICY_DROP_OLD
        assert slow_consumer_policy(None) == POLICY_DROP_OLD


class TestSubscriberQueue:
    def test_fifo_and_delivered_count(self):
        q = SubscriberQueue(0, maxlen=4, policy=POLICY_DROP_OLD)
        for i in range(3):
            assert q.put(_event(i))
        got = [q.get(timeout=0.01) for _ in range(3)]
        assert [e.seq for e in got] == [0, 1, 2]
        assert q.delivered == 3
        assert q.get(timeout=0.01) is None  # empty -> timeout

    def test_drop_old_evicts_head(self):
        q = SubscriberQueue(0, maxlen=2, policy=POLICY_DROP_OLD)
        for i in range(4):
            assert q.put(_event(i))
        assert q.dropped == 2
        assert [q.get(0.01).seq, q.get(0.01).seq] == [2, 3]

    def test_drop_new_keeps_head(self):
        q = SubscriberQueue(0, maxlen=2, policy=POLICY_DROP_NEW)
        for i in range(4):
            assert q.put(_event(i))
        assert q.dropped == 2
        assert [q.get(0.01).seq, q.get(0.01).seq] == [0, 1]

    def test_disconnect_policy_refuses(self):
        q = SubscriberQueue(0, maxlen=1, policy=POLICY_DISCONNECT)
        assert q.put(_event(0))
        assert not q.put(_event(1))  # full -> disconnect me
        assert q.closed

    def test_put_final_bypasses_bound(self):
        q = SubscriberQueue(0, maxlen=1, policy=POLICY_DROP_NEW)
        q.put(_event(0))
        q.put_final(END_OF_STREAM)
        assert q.depth == 2
        assert q.get(0.01).seq == 0
        assert q.get(0.01) is END_OF_STREAM

    def test_get_after_close_reports_disconnect(self):
        q = SubscriberQueue(0, maxlen=2, policy=POLICY_DROP_OLD)
        q.close()
        assert q.get(timeout=0.01) is DISCONNECTED

    def test_validation(self):
        with pytest.raises(ValueError):
            SubscriberQueue(0, maxlen=0, policy=POLICY_DROP_OLD)
        with pytest.raises(ValueError):
            SubscriberQueue(0, maxlen=1, policy="shrug")


class TestEventHub:
    def test_live_fanout(self):
        hub = EventHub()
        a = hub.subscribe(from_seq=None)
        b = hub.subscribe(from_seq=None)
        hub.publish(_event(0))
        assert a.get(0.01).seq == 0
        assert b.get(0.01).seq == 0
        assert hub.published == 1

    def test_backlog_replay_from_seq(self):
        hub = EventHub()
        for i in range(5):
            hub.publish(_event(i))
        late = hub.subscribe(from_seq=2)
        got = [late.get(0.01) for _ in range(3)]
        assert [e.seq for e in got] == [2, 3, 4]

    def test_late_subscriber_sees_full_stream_plus_eos(self):
        hub = EventHub()
        for i in range(3):
            hub.publish(_event(i))
        hub.end_stream()
        late = hub.subscribe(from_seq=0)
        got = [late.get(0.01) for _ in range(4)]
        assert [e.seq for e in got[:3]] == [0, 1, 2]
        assert got[3] is END_OF_STREAM

    def test_live_only_subscriber_skips_backlog(self):
        hub = EventHub()
        hub.publish(_event(0))
        live = hub.subscribe(from_seq=None)
        hub.publish(_event(1))
        assert live.get(0.01).seq == 1

    def test_mid_stream_unsubscribe(self):
        hub = EventHub()
        a = hub.subscribe(from_seq=None)
        b = hub.subscribe(from_seq=None)
        hub.publish(_event(0))
        hub.unsubscribe(a)
        hub.publish(_event(1))
        assert hub.subscriber_count == 1
        assert [b.get(0.01).seq, b.get(0.01).seq] == [0, 1]

    def test_backlog_replay_not_counted_as_drop(self):
        # backlog bigger than the queue bound still replays completely
        hub = EventHub(queue_depth=2)
        for i in range(6):
            hub.publish(_event(i))
        late = hub.subscribe(from_seq=0)
        got = [late.get(0.01) for _ in range(6)]
        assert [e.seq for e in got] == list(range(6))
        assert late.dropped == 0

    def test_disconnect_policy_detaches_and_records(self):
        records = []
        hub = EventHub(policy=POLICY_DISCONNECT, queue_depth=1,
                       on_error_record=records.append)
        slow = hub.subscribe(from_seq=None)
        hub.publish(_event(0))
        hub.publish(_event(1))  # queue full -> policy fires
        assert hub.subscriber_count == 0
        assert slow.get(0.01).seq == 0  # what was queued is still readable
        assert slow.get(0.01) is DISCONNECTED
        assert records and records[0].stage == "service"
        assert records[0].action == "disconnected"
        assert records[0].error == "SlowConsumer"

    def test_drop_records_carry_policy_action(self):
        records = []
        hub = EventHub(policy=POLICY_DROP_OLD, queue_depth=1,
                       on_error_record=records.append)
        hub.subscribe(from_seq=None)
        hub.publish(_event(0))
        hub.publish(_event(1))
        assert len(records) == 1
        assert records[0].action == POLICY_DROP_OLD
        assert records[0].component == "subscriber:0"

    def test_publish_after_end_is_an_error(self):
        hub = EventHub()
        hub.end_stream()
        with pytest.raises(RuntimeError):
            hub.publish(_event(0))

    def test_close_tears_down_subscribers(self):
        hub = EventHub()
        q = hub.subscribe(from_seq=None)
        hub.close()
        assert hub.subscriber_count == 0
        assert q.get(0.01) is DISCONNECTED
