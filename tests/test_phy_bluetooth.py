"""Tests for repro.phy.bluetooth: framing and the full modem."""

import numpy as np
import pytest

from repro.errors import DecodeError, SyncError
from repro.phy.bluetooth import (
    BluetoothDemodulator,
    BluetoothModulator,
    TYPE_DH1,
    TYPE_DH3,
    TYPE_DH5,
    TYPE_NULL,
    TYPE_POLL,
    header_info_bits,
    payload_bits,
    sync_word,
)
from repro.util.bits import bt_hec, unpack_uint


@pytest.fixture(scope="module")
def modem():
    return BluetoothModulator(8e6), BluetoothDemodulator(8e6)


def _embed(wave, lead=400, tail=200, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    rx[lead : lead + wave.size] += wave
    return rx


class TestSyncWord:
    def test_length(self):
        assert sync_word(0x9E8B33).size == 64

    def test_deterministic(self):
        assert np.array_equal(sync_word(0x123456), sync_word(0x123456))

    def test_lap_specific(self):
        a, b = sync_word(0x111111), sync_word(0x222222)
        agreement = int(np.sum(a == b))
        assert agreement < 48  # far apart in Hamming distance

    def test_balanced(self):
        ones = int(sync_word(0x9E8B33).sum())
        assert 16 < ones < 48


class TestHeaderBits:
    def test_length_18(self):
        assert header_info_bits(1, TYPE_DH5, 1, 0, 0).size == 18

    def test_hec_consistent(self):
        header = header_info_bits(3, TYPE_DH1, 1, 1, 0, uap=0x12)
        assert bt_hec(header[:10], 0x12) == unpack_uint(header[10:18])


class TestPayloadBits:
    def test_structure(self):
        bits = payload_bits(b"ab")
        assert bits.size == 16 + 16 + 16  # header + 2 bytes + CRC

    def test_length_encoded(self):
        bits = payload_bits(b"x" * 100)
        assert unpack_uint(bits[3:13]) == 100


class TestModulator:
    def test_dh5_bit_budget(self, modem):
        mod, _ = modem
        bits = mod.packet_bits(TYPE_DH5, b"p" * 339, clock=0)
        assert bits.size == 72 + 54 + 16 + 339 * 8 + 16
        assert bits.size / 1e6 < 5 * 625e-6  # fits in 5 slots

    def test_null_packet_has_no_payload(self, modem):
        mod, _ = modem
        assert mod.packet_bits(TYPE_NULL, b"", clock=0).size == 126

    def test_rejects_oversized_payload(self, modem):
        mod, _ = modem
        with pytest.raises(ValueError):
            mod.packet_bits(TYPE_DH1, b"x" * 28, clock=0)

    def test_airtime(self, modem):
        mod, _ = modem
        assert mod.airtime(TYPE_DH5, 339) == pytest.approx(2870e-6)
        assert mod.airtime(TYPE_POLL, 0) == pytest.approx(126e-6)


class TestDemodulator:
    @pytest.mark.parametrize(
        "ptype,size", [(TYPE_DH1, 27), (TYPE_DH3, 180), (TYPE_DH5, 339)]
    )
    def test_round_trip(self, modem, ptype, size):
        mod, dem = modem
        data = bytes((i * 7) & 0xFF for i in range(size))
        rx = _embed(mod.modulate(ptype, data, clock=21, seqn=1))
        packet = dem.demodulate(rx)
        assert packet.ptype == ptype
        assert packet.payload == data
        assert packet.clock == 21
        assert packet.seqn == 1
        assert packet.crc_ok

    def test_every_whitening_seed_recoverable(self, modem):
        mod, dem = modem
        data = b"whitening-seed-check"
        for clock in (0, 1, 31, 63):
            rx = _embed(mod.modulate(TYPE_DH1, data, clock=clock), seed=clock)
            packet = dem.demodulate(rx)
            assert packet.clock == clock
            assert packet.payload == data

    def test_start_sample_estimate(self, modem):
        mod, dem = modem
        rx = _embed(mod.modulate(TYPE_DH1, b"start", clock=5), lead=808)
        packet = dem.demodulate(rx)
        assert abs(packet.start_sample - 808) <= 2 * dem.modem.sps

    def test_noise_only_raises(self, modem):
        _, dem = modem
        rng = np.random.default_rng(9)
        noise = (rng.normal(size=30000) + 1j * rng.normal(size=30000)).astype(
            np.complex64
        )
        with pytest.raises(DecodeError):
            dem.demodulate(noise)

    def test_wrong_lap_raises(self, modem):
        mod, _ = modem
        dem_other = BluetoothDemodulator(8e6, lap=0x123456)
        rx = _embed(mod.modulate(TYPE_DH1, b"lapcheck", clock=3))
        with pytest.raises(SyncError):
            dem_other.demodulate(rx)

    def test_truncated_payload_raises(self, modem):
        mod, dem = modem
        wave = mod.modulate(TYPE_DH5, b"z" * 300, clock=7)
        with pytest.raises(DecodeError):
            dem.demodulate(_embed(wave[: wave.size // 2], tail=0))

    def test_try_demodulate_none_on_noise(self, modem):
        _, dem = modem
        assert dem.try_demodulate(np.ones(2000, dtype=np.complex64)) is None

    def test_poll_packet(self, modem):
        mod, dem = modem
        rx = _embed(mod.modulate(TYPE_POLL, b"", clock=9, lt_addr=2))
        packet = dem.demodulate(rx)
        assert packet.ptype == TYPE_POLL
        assert packet.payload == b""
        assert packet.slots == 1
