"""Tests for the Bluetooth frequency detector (Section 4.6)."""

import numpy as np
import pytest

from repro.core.detectors import BluetoothFrequencyDetector
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult
from repro.dsp.samples import SampleBuffer
from repro.emulator.channel import apply_freq_offset
from repro.phy.bluetooth import BluetoothModulator, TYPE_DH1
from repro.phy.bluetooth_fh import channel_freq
from repro.phy.wifi import WifiModulator
from repro.phy.wifi_mac import build_data_frame
from repro.util.timebase import Timebase

FS = 8e6
CENTER = 2.4415e9


def _buffer_with(wave, lead=400, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + 400
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    rx[lead : lead + wave.size] += wave
    buf = SampleBuffer(rx.astype(np.complex64), Timebase(FS))
    history = PeakHistory(FS)
    history.append(lead, lead + wave.size, 1.0, 1.0)
    detection = PeakDetectionResult(
        history=history, chunks=[], noise_floor=noise**2 * 2,
        threshold=noise**2 * 5, total_samples=n,
    )
    return buf, detection


def _bt_on_channel(channel):
    wave = BluetoothModulator(FS).modulate(TYPE_DH1, b"freq" * 5, clock=3)
    offset = channel_freq(channel) - CENTER
    return apply_freq_offset(wave, offset, FS)


class TestBluetoothFreq:
    @pytest.mark.parametrize("channel", [36, 39, 43])
    def test_detects_channel(self, channel):
        buf, det = _buffer_with(_bt_on_channel(channel))
        out = BluetoothFrequencyDetector(center_freq=CENTER).classify(det, buf)
        assert len(out) == 1
        assert out[0].protocol == "bluetooth"
        assert out[0].channel == channel

    def test_edge_smeared_burst_still_single_channel(self):
        # leading/trailing noise-only frames inside the peak bounds must
        # not dilute the single-channel fraction (regression: the
        # fraction was normalized by the total frame count, so a burst
        # whose peak included smeared edges fell below the threshold)
        wave = _bt_on_channel(39)
        pad = 6 * 256  # six channelizer frames of noise on each side
        lead = 400
        rng = np.random.default_rng(1)
        n = wave.size + 2 * pad + 2 * lead
        rx = 0.05 * (rng.normal(size=n) + 1j * rng.normal(size=n))
        rx[lead + pad : lead + pad + wave.size] += wave
        buf = SampleBuffer(rx.astype(np.complex64), Timebase(FS))
        history = PeakHistory(FS)
        history.append(lead, lead + 2 * pad + wave.size, 1.0, 1.0)
        det = PeakDetectionResult(
            history=history, chunks=[], noise_floor=0.005,
            threshold=0.0125, total_samples=n,
        )
        out = BluetoothFrequencyDetector(center_freq=CENTER).classify(det, buf)
        assert len(out) == 1
        assert out[0].channel == 39
        assert out[0].info["single_fraction"] >= 0.7

    def test_rejects_wideband_wifi(self):
        wave = WifiModulator(FS).modulate(build_data_frame(1, 2, b"w" * 60), 1.0)
        buf, det = _buffer_with(wave)
        out = BluetoothFrequencyDetector(center_freq=CENTER).classify(det, buf)
        assert out == []

    def test_rejects_noise(self):
        rng = np.random.default_rng(3)
        wave = 0.5 * (rng.normal(size=4000) + 1j * rng.normal(size=4000))
        buf, det = _buffer_with(wave.astype(np.complex64))
        out = BluetoothFrequencyDetector(center_freq=CENTER).classify(det, buf)
        assert out == []

    def test_requires_buffer(self):
        buf, det = _buffer_with(_bt_on_channel(39))
        with pytest.raises(ValueError):
            BluetoothFrequencyDetector().classify(det, None)

    def test_rejects_mismatched_fft(self):
        with pytest.raises(ValueError):
            BluetoothFrequencyDetector(nchannels=7, fft_size=256)

    def test_bin_count_knob(self):
        # coarser bins (4 x 2 MHz) still single-bin for Bluetooth
        buf, det = _buffer_with(_bt_on_channel(37))
        out = BluetoothFrequencyDetector(
            nchannels=4, fft_size=256, center_freq=CENTER
        ).classify(det, buf)
        assert len(out) == 1
