"""Tests for repro.phy.gfsk."""

import numpy as np
import pytest

from repro.phy.gfsk import GfskModem


@pytest.fixture(scope="module")
def modem():
    return GfskModem(8e6)


class TestModulate:
    def test_length(self, modem):
        wave = modem.modulate(np.ones(100, dtype=np.uint8))
        assert wave.size == 800

    def test_constant_envelope(self, modem):
        rng = np.random.default_rng(0)
        wave = modem.modulate(rng.integers(0, 2, 200).astype(np.uint8))
        assert np.allclose(np.abs(wave), 1.0, atol=1e-5)

    def test_continuous_phase(self, modem):
        rng = np.random.default_rng(1)
        wave = modem.modulate(rng.integers(0, 2, 100).astype(np.uint8))
        d2 = np.angle(np.exp(1j * np.diff(np.angle(wave[1:] * np.conj(wave[:-1])))))
        assert np.max(np.abs(d2)) < 0.3  # no phase jumps anywhere

    def test_rejects_fractional_sps(self):
        with pytest.raises(ValueError):
            GfskModem(2.5e6)

    def test_duration(self, modem):
        assert modem.duration(1000) == pytest.approx(1e-3)


class TestDemodulate:
    def test_clean_round_trip(self, modem, rng):
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        out = modem.demodulate(modem.modulate(bits))
        assert np.array_equal(out[: bits.size], bits)

    def test_noisy_round_trip(self, modem, rng):
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        wave = modem.modulate(bits)
        noisy = wave + 0.1 * (
            rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
        ).astype(np.complex64)
        out = modem.demodulate(noisy)
        assert np.array_equal(out[: bits.size], bits)

    def test_cfo_tolerated(self, modem, rng):
        # mean removal in the discriminator cancels moderate CFO
        bits = rng.integers(0, 2, 300).astype(np.uint8)
        wave = modem.modulate(bits)
        n = np.arange(wave.size)
        shifted = (wave * np.exp(2j * np.pi * 50e3 * n / 8e6)).astype(np.complex64)
        out = modem.demodulate(shifted)
        assert np.array_equal(out[: bits.size], bits)

    def test_soft_bits_sign_matches_hard(self, modem, rng):
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        wave = modem.modulate(bits)
        soft = modem.soft_bits(wave)
        hard = modem.demodulate(wave)
        assert np.array_equal((soft > 0).astype(np.uint8), hard)

    def test_precomputed_disc_equivalent(self, modem, rng):
        bits = rng.integers(0, 2, 100).astype(np.uint8)
        wave = modem.modulate(bits)
        disc = modem.discriminate(wave)
        assert np.array_equal(
            modem.demodulate(wave, 3), modem.demodulate(wave, 3, disc)
        )

    def test_empty_input(self, modem):
        assert modem.soft_bits(np.zeros(0, dtype=np.complex64)).size == 0


class TestBestOffset:
    def test_finds_sync_position(self, modem, rng):
        sync = rng.integers(0, 2, 64).astype(np.uint8)
        tail = rng.integers(0, 2, 100).astype(np.uint8)
        lead = rng.integers(0, 2, 37).astype(np.uint8)
        wave = modem.modulate(np.concatenate([lead, sync, tail]))
        # prepend noise to force a non-trivial offset
        noise = 0.05 * (rng.normal(size=133) + 1j * rng.normal(size=133))
        rx = np.concatenate([noise.astype(np.complex64), wave])
        offset, pos, score = modem.best_offset(rx, sync)
        assert score >= 58
        found_start = offset + pos * modem.sps
        true_start = 133 + 37 * modem.sps
        assert abs(found_start - true_start) <= modem.sps

    def test_no_sync_low_score(self, modem, rng):
        sync = rng.integers(0, 2, 64).astype(np.uint8)
        noise = (rng.normal(size=4000) + 1j * rng.normal(size=4000)).astype(
            np.complex64
        )
        _, _, score = modem.best_offset(noise, sync)
        assert score < 50
