"""Tests for repro.emulator.groundtruth."""

import numpy as np
import pytest

from repro.emulator.groundtruth import GroundTruth, Transmission
from repro.util.timebase import Timebase


def _tx(start, end, protocol="wifi", observable=True, **kw):
    return Transmission(
        start_time=start, end_time=end, protocol=protocol, source="n",
        kind="data", observable=observable, **kw
    )


@pytest.fixture
def truth():
    txs = [
        _tx(0.01, 0.02),
        _tx(0.03, 0.04, protocol="bluetooth"),
        _tx(0.05, 0.06, observable=False),
        _tx(0.015, 0.025, protocol="bluetooth"),  # overlaps the first
    ]
    return GroundTruth(txs, Timebase(8e6), duration=0.1)


class TestQueries:
    def test_observable_filters(self, truth):
        assert len(truth.observable()) == 3
        assert len(truth.observable("wifi")) == 1

    def test_by_protocol(self, truth):
        assert len(truth.by_protocol("bluetooth")) == 2

    def test_collided(self, truth):
        assert truth.collided(truth.transmissions[0])
        assert not truth.collided(truth.transmissions[1])

    def test_duration_property(self):
        tx = _tx(0.1, 0.3)
        assert tx.duration == pytest.approx(0.2)

    def test_overlaps(self):
        tx = _tx(0.1, 0.2)
        assert tx.overlaps(0.15, 0.5)
        assert not tx.overlaps(0.2, 0.3)  # half-open


class TestBusyFraction:
    def test_empty(self):
        truth = GroundTruth([], Timebase(8e6), duration=1.0)
        assert truth.busy_fraction() == 0.0

    def test_single(self):
        truth = GroundTruth([_tx(0.0, 0.25)], Timebase(8e6), duration=1.0)
        assert truth.busy_fraction() == pytest.approx(0.25)

    def test_overlap_not_double_counted(self):
        truth = GroundTruth(
            [_tx(0.0, 0.5), _tx(0.25, 0.75)], Timebase(8e6), duration=1.0
        )
        assert truth.busy_fraction() == pytest.approx(0.75)

    def test_unobservable_ignored(self):
        truth = GroundTruth(
            [_tx(0.0, 0.5, observable=False)], Timebase(8e6), duration=1.0
        )
        assert truth.busy_fraction() == 0.0


class TestSampleMask:
    def test_marks_transmissions(self, truth):
        mask = truth.sample_mask(800000)
        assert mask[int(0.015 * 8e6)]
        assert not mask[int(0.045 * 8e6)]
        assert not mask[int(0.055 * 8e6)]  # unobservable

    def test_count(self):
        truth = GroundTruth([_tx(0.0, 0.01)], Timebase(8e6), duration=0.1)
        mask = truth.sample_mask(800000)
        assert mask.sum() == 80000
