"""Tests for the phase detectors: DBPSK/Barker, GFSK, PSK constellation."""

import numpy as np
import pytest

from repro.core.detectors import (
    DbpskPhaseDetector,
    GfskPhaseDetector,
    PskConstellationDetector,
)
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult
from repro.dsp.samples import SampleBuffer
from repro.phy.bluetooth import BluetoothModulator, TYPE_DH1
from repro.phy.gfsk import GfskModem
from repro.phy.wifi import WifiModulator
from repro.phy.wifi_mac import build_data_frame
from repro.util.timebase import Timebase

FS = 8e6


def _buffer_with(wave, lead=400, tail=400, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    rx[lead : lead + wave.size] += wave
    buf = SampleBuffer(rx.astype(np.complex64), Timebase(FS))
    history = PeakHistory(FS)
    history.append(lead, lead + wave.size, 1.0, 1.0)
    detection = PeakDetectionResult(
        history=history, chunks=[], noise_floor=noise**2 * 2,
        threshold=noise**2 * 5, total_samples=n,
    )
    return buf, detection


@pytest.fixture(scope="module")
def wifi_wave():
    mpdu = build_data_frame(1, 2, b"p" * 60)
    return WifiModulator(FS).modulate(mpdu, 1.0)


@pytest.fixture(scope="module")
def bt_wave():
    return BluetoothModulator(FS).modulate(TYPE_DH1, b"q" * 20, clock=9)


class TestDbpskDetector:
    def test_classifies_wifi(self, wifi_wave):
        buf, det = _buffer_with(wifi_wave)
        out = DbpskPhaseDetector().classify(det, buf)
        assert len(out) == 1
        assert out[0].protocol == "wifi"
        assert out[0].info["barker_score"] > 0.62

    def test_rejects_gfsk(self, bt_wave):
        buf, det = _buffer_with(bt_wave)
        assert DbpskPhaseDetector().classify(det, buf) == []

    def test_rejects_noise_peak(self):
        rng = np.random.default_rng(1)
        wave = (rng.normal(size=4000) + 1j * rng.normal(size=4000)) * 0.5
        buf, det = _buffer_with(wave.astype(np.complex64))
        assert DbpskPhaseDetector().classify(det, buf) == []

    def test_rejects_cw_tone(self):
        wave = np.exp(2j * np.pi * 1e5 * np.arange(4000) / FS)
        buf, det = _buffer_with(wave.astype(np.complex64))
        assert DbpskPhaseDetector().classify(det, buf) == []

    def test_short_peak_skipped(self, wifi_wave):
        buf, det = _buffer_with(wifi_wave[:800])  # 100 us < min_duration
        assert DbpskPhaseDetector().classify(det, buf) == []

    def test_requires_buffer(self, wifi_wave):
        buf, det = _buffer_with(wifi_wave)
        with pytest.raises(ValueError):
            DbpskPhaseDetector().classify(det, None)

    def test_chip_phase_variants_detected(self):
        mpdu = build_data_frame(1, 2, b"v" * 40)
        for phase in (0.25, 0.75, 1.0):
            wave = WifiModulator(FS).modulate(mpdu, 1.0, chip_phase=phase)
            buf, det = _buffer_with(wave, seed=int(phase * 4))
            out = DbpskPhaseDetector().classify(det, buf)
            assert len(out) == 1, phase


class TestGfskDetector:
    def test_classifies_bluetooth(self, bt_wave):
        buf, det = _buffer_with(bt_wave)
        out = GfskPhaseDetector().classify(det, buf)
        assert len(out) == 1
        assert out[0].protocol == "bluetooth"

    def test_channel_from_first_derivative(self, bt_wave):
        # the default center (2441.5 MHz) puts channel 41 (2443 MHz) at a
        # baseband offset of +1.5 MHz
        n = np.arange(bt_wave.size)
        shifted = (bt_wave * np.exp(2j * np.pi * 1.5e6 * n / FS)).astype(np.complex64)
        buf, det = _buffer_with(shifted)
        out = GfskPhaseDetector().classify(det, buf)
        assert out[0].channel == 41

    def test_rejects_dsss(self, wifi_wave):
        buf, det = _buffer_with(wifi_wave[: 2 * 2400])
        # give the peak a Bluetooth-plausible duration
        out = GfskPhaseDetector().classify(det, buf)
        assert out == []

    def test_rejects_noise(self):
        rng = np.random.default_rng(2)
        wave = (rng.normal(size=2400) + 1j * rng.normal(size=2400)) * 0.5
        buf, det = _buffer_with(wave.astype(np.complex64))
        assert GfskPhaseDetector().classify(det, buf) == []

    def test_long_peak_skipped(self):
        wave = GfskModem(FS).modulate(np.ones(4000, dtype=np.uint8))
        buf, det = _buffer_with(wave)  # 4 ms > 5 slots? no: 4ms > 3.125ms max
        assert GfskPhaseDetector().classify(det, buf) == []

    def test_cw_tone_is_continuous_phase(self):
        # a pure tone also has zero second derivative: the detector alone
        # cannot reject it (the microwave detector handles constant power);
        # document this as an accepted false positive
        wave = np.exp(2j * np.pi * 5e5 * np.arange(2400) / FS)
        buf, det = _buffer_with(wave.astype(np.complex64))
        out = GfskPhaseDetector().classify(det, buf)
        assert len(out) == 1  # tolerated false positive


class TestPskConstellation:
    def test_dbpsk_order_2(self, wifi_wave):
        buf, det = _buffer_with(wifi_wave)
        out = PskConstellationDetector().classify(det, buf)
        assert len(out) == 1
        assert out[0].info["constellation_order"] == 2
        assert out[0].info["modulation"] == "DBPSK"

    def test_gfsk_rejected(self, bt_wave):
        buf, det = _buffer_with(bt_wave)
        out = PskConstellationDetector().classify(det, buf)
        assert out == []

    def test_protocol_map_respected(self, wifi_wave):
        buf, det = _buffer_with(wifi_wave)
        out = PskConstellationDetector(
            protocol_for_order={4: "something"}
        ).classify(det, buf)
        assert out == []
