"""The deadline/admission layer: budgets, priorities, shedding, SLO gate.

Covers the PR's tentpole end to end: absolute per-task deadlines in the
parallel stage (a permanently-stalled demodulator cannot block past its
budget), deadline-priority dispatch ordering, AIMD admission control
with backpressure through the streaming monitor, the leaked-worker
accounting around ``Future.cancel()``'s no-op on running workers, and
the rfbench ``--max-p99`` latency SLO gate.
"""

import time
import types

import pytest

from repro.analysis.decoders import PacketRecord
from repro.core import RFDumpMonitor
from repro.core.config import MonitorConfig
from repro.core.deadline import (
    AdmissionController,
    DeadlineScheduler,
    WindowBudget,
    order_tasks,
    range_priority,
)
from repro.core.dispatcher import DispatchedRange, Dispatcher
from repro.core.parallel import AnalysisTask, ParallelAnalysisStage
from repro.core.streaming import StreamingMonitor
from repro.dsp.samples import SampleBuffer
from repro.errors import DeadlineError, DecodeTimeoutError, RFDumpError
from repro.faults import SlowDecoder
from repro.faults.harness import split_windows
from repro.obs import Observability
from repro.obs.metrics import MetricsRegistry
from repro.tools.rfbench import (
    _check_latency_requirements,
    _parse_latency_requirements,
)
from repro.tools.rfdump import build_parser as build_rfdump_parser


class _EmittingDecoder:
    """One packet per scanned range, wherever it runs."""

    def scan(self, buffer, **kwargs):
        return [
            PacketRecord(
                protocol="wifi", start_sample=buffer.start_sample,
                end_sample=buffer.end_sample, ok=True, decoder="fake",
            )
        ]


def _fake_inputs(n_ranges=1, span=1_000, confidence=0.5):
    buffer = SampleBuffer.from_array([0j] * (n_ranges * span))
    ranges = {
        "wifi": [
            DispatchedRange(start_sample=i * span, end_sample=(i + 1) * span,
                            confidence=confidence)
            for i in range(n_ranges)
        ]
    }
    return buffer, ranges


def _rng(start, end, confidence=0.0):
    return DispatchedRange(start_sample=start, end_sample=end,
                           confidence=confidence)


# -- WindowBudget ------------------------------------------------------------

class TestWindowBudget:
    def test_absolute_deadline_from_injected_anchor(self):
        budget = WindowBudget(0.5, t0=100.0)
        assert budget.deadline == 100.5
        assert budget.seconds == 0.5

    def test_fresh_budget_not_expired(self):
        budget = WindowBudget(30.0)
        assert not budget.expired
        assert budget.remaining() > 29.0

    def test_past_anchor_is_expired(self):
        budget = WindowBudget(0.05, t0=time.monotonic() - 1.0)
        assert budget.expired
        assert budget.remaining() < 0.0

    def test_nonpositive_budget_rejected(self):
        with pytest.raises(ValueError):
            WindowBudget(0.0)


# -- priority ordering -------------------------------------------------------

class TestPriority:
    def test_confidence_major_cost_minor(self):
        confident = _rng(0, 4_000, confidence=0.9)
        cheap = _rng(0, 1_000, confidence=0.5)
        costly = _rng(0, 8_000, confidence=0.5)
        order = sorted(
            [costly, cheap, confident],
            key=lambda r: range_priority("wifi", r),
        )
        assert order == [confident, cheap, costly]

    def test_dispatcher_priority_order_is_insertion_invariant(self):
        a = {"wifi": [_rng(0, 1_000, 0.9)], "bluetooth": [_rng(0, 500, 0.9)]}
        b = {"bluetooth": [_rng(0, 500, 0.9)], "wifi": [_rng(0, 1_000, 0.9)]}
        assert Dispatcher.priority_order(a) == Dispatcher.priority_order(b)
        # equal confidence: the cheaper bluetooth range runs first
        assert Dispatcher.priority_order(a)[0][0] == "bluetooth"

    def test_order_tasks_matches_range_priority(self):
        buffer = SampleBuffer.from_array([0j] * 3_000)
        low = AnalysisTask("wifi", [(buffer.slice(0, 2_000), None)],
                           confidence=0.2)
        high = AnalysisTask("bluetooth", [(buffer.slice(0, 1_000), None)],
                            confidence=0.8)
        assert order_tasks([low, high]) == [high, low]
        assert order_tasks([high, low]) == [high, low]


# -- admission control -------------------------------------------------------

class TestAdmissionController:
    def test_aimd_up_and_down(self):
        ctrl = AdmissionController(step_up=0.25, step_down=0.05)
        assert ctrl.record(True) == 0.25
        assert ctrl.record(True) == 0.5
        assert ctrl.record(False) == pytest.approx(0.45)

    def test_capped_at_max_shed_and_floored_at_zero(self):
        ctrl = AdmissionController(step_up=0.5, max_shed=0.9)
        for _ in range(5):
            ctrl.record(True)
        assert ctrl.level == 0.9
        for _ in range(40):
            ctrl.record(False)
        assert ctrl.level == 0.0

    def test_invalid_parameters_rejected(self):
        with pytest.raises(ValueError):
            AdmissionController(step_up=0.0)
        with pytest.raises(ValueError):
            AdmissionController(max_shed=1.5)


class TestAdmit:
    def test_level_zero_admits_everything(self):
        scheduler = DeadlineScheduler(100.0)
        _, ranges = _fake_inputs(3)
        admitted, records = scheduler.admit(ranges, scheduler.start_window())
        assert admitted == ranges
        assert records == []
        assert scheduler.ranges_shed == 0

    def test_expired_budget_sheds_everything(self):
        obs = Observability()
        scheduler = DeadlineScheduler(100.0, obs=obs)
        _, ranges = _fake_inputs(2)
        budget = WindowBudget(0.1, t0=time.monotonic() - 1.0)
        admitted, records = scheduler.admit(ranges, budget)
        assert admitted == {}
        assert len(records) == 2
        assert all(r.action == "shed" for r in records)
        assert all(r.error == "DeadlineError" for r in records)
        assert scheduler.ranges_shed == 2
        assert obs.registry.value(
            "rfdump_ranges_shed_total", protocol="wifi"
        ) == 2

    def test_level_sheds_lowest_priority_tail_keeps_dispatch_order(self):
        scheduler = DeadlineScheduler(
            100.0, controller=AdmissionController(level=0.5))
        ranges = {"wifi": [
            _rng(0, 1_000, confidence=0.9),
            _rng(1_000, 2_000, confidence=0.1),   # the shed tail
            _rng(2_000, 3_000, confidence=0.8),
            _rng(3_000, 4_000, confidence=0.2),   # the shed tail
        ]}
        admitted, records = scheduler.admit(ranges, scheduler.start_window())
        kept = admitted["wifi"]
        assert [r.confidence for r in kept] == [0.9, 0.8]
        # dispatch order preserved, not priority order
        assert kept[0].start_sample < kept[1].start_sample
        assert sorted(r.start_sample for r in records) == [1_000, 3_000]

    def test_finish_window_accounts_misses_and_level(self):
        obs = Observability()
        scheduler = DeadlineScheduler(100.0, obs=obs)
        assert scheduler.finish_window(0.2) is True      # 200ms > 100ms
        assert scheduler.finish_window(0.01) is False
        assert scheduler.deadline_misses == 1
        assert scheduler.windows == 2
        assert obs.registry.value("rfdump_deadline_misses_total") == 1
        assert obs.registry.value("rfdump_admission_level") == pytest.approx(
            0.20)


# -- parallel stage under deadlines ------------------------------------------

class TestParallelDeadlines:
    def test_hung_worker_cannot_block_past_budget_degrade(self):
        obs = Observability()
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True)
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=2, timeout_per_range=0.1,
            on_error="degrade", obs=obs,
        )
        try:
            buffer, ranges = _fake_inputs(1)
            t0 = time.monotonic()
            packets, _, fallbacks = stage.run(buffer, ranges)
            elapsed = time.monotonic() - t0
            assert elapsed < 1.0  # abandoned, not waited out
            assert packets == []
            assert fallbacks == 0
            assert stage.shed_ranges == 1
            records = stage.take_error_records()
            assert [r.action for r in records] == ["timeout"]
        finally:
            decoder.release()
            stage.close()

    def test_hung_worker_raises_typed_error_in_raise_mode(self):
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True)
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=2, timeout_per_range=0.1,
            on_error="raise",
        )
        try:
            buffer, ranges = _fake_inputs(1)
            with pytest.raises(DecodeTimeoutError) as excinfo:
                stage.run(buffer, ranges)
            assert isinstance(excinfo.value, DeadlineError)
            assert isinstance(excinfo.value, RFDumpError)
            assert excinfo.value.protocol == "wifi"
        finally:
            decoder.release()
            stage.close()

    def test_skip_policy_sheds_timed_out_task(self):
        obs = Observability()
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True)
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=2, timeout_per_range=0.1,
            on_error="skip", obs=obs,
        )
        try:
            buffer, ranges = _fake_inputs(1)
            packets, _, fallbacks = stage.run(buffer, ranges)
            assert packets == []
            assert fallbacks == 0
            assert obs.registry.value(
                "rfdump_ranges_shed_total", protocol="wifi"
            ) == 1
        finally:
            decoder.release()
            stage.close()

    def test_legacy_policy_bounds_inline_retry_under_budget(self):
        # on_error=None historically re-ran the task inline with no
        # bound; under a window budget the retry is bounded and a hang
        # is shed instead of stalling the caller forever
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True,
                              only_in_worker=True)
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=2, timeout_per_range=0.1,
        )
        try:
            buffer, ranges = _fake_inputs(1)
            budget = WindowBudget(0.5)
            t0 = time.monotonic()
            packets, _, fallbacks = stage.run(buffer, ranges, budget=budget)
            elapsed = time.monotonic() - t0
            assert elapsed < 2.0
            assert packets == []
            assert fallbacks == 0
            assert stage.shed_ranges == 1
            actions = [r.action for r in stage.take_error_records()]
            assert actions == ["timeout", "shed"]
        finally:
            decoder.release()
            stage.close()

    def test_queued_task_deadline_runs_from_submit_time(self):
        # one worker, two tasks: the second never starts, but its
        # deadline was fixed at submit, so both expire together instead
        # of serializing (the old loop waited timeout per future)
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True)
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=1, granularity="range",
            timeout_per_range=0.15, on_error="degrade",
        )
        try:
            buffer, ranges = _fake_inputs(2)
            t0 = time.monotonic()
            packets, _, _ = stage.run(buffer, ranges)
            elapsed = time.monotonic() - t0
            assert packets == []
            assert stage.shed_ranges == 2
            # both tasks expired at ~0.15s from submit; well under the
            # 0.30s+ a per-future countdown would serialize into
            assert elapsed < 0.29
        finally:
            decoder.release()
            stage.close()

    def test_serial_and_parallel_identical_with_generous_deadline(
            self, wifi_trace):
        serial = RFDumpMonitor(protocols=("wifi",)).process(
            wifi_trace.buffer)
        monitor = RFDumpMonitor(config=MonitorConfig(
            protocols=("wifi",), workers=4, deadline_ms=30_000.0,
        ))
        with monitor.parallel_stage:
            report = monitor.process(wifi_trace.buffer)
        assert report.packets == serial.packets
        assert report.shed_ranges == 0
        assert not report.deadline_missed
        assert monitor.deadline_misses == 0


# -- leaked-worker accounting ------------------------------------------------

class TestLeakedWorkers:
    def test_leak_counted_then_reclaimed_on_release(self):
        obs = Observability()
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True)
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=2, timeout_per_range=0.1,
            on_error="degrade", obs=obs,
        )
        try:
            buffer, ranges = _fake_inputs(1)
            stage.run(buffer, ranges)
            assert obs.registry.value("rfdump_parallel_leaked_workers") == 1
            decoder.release()
            deadline = time.monotonic() + 5.0
            while (obs.registry.value("rfdump_parallel_leaked_workers") != 0
                   and time.monotonic() < deadline):
                time.sleep(0.01)
            assert obs.registry.value("rfdump_parallel_leaked_workers") == 0
        finally:
            decoder.release()
            stage.close()

    def test_degrade_rebuilds_pool_when_leaks_exhaust_it(self):
        obs = Observability()
        # only the first scan hangs; after the pool rebuild the decoder
        # behaves, proving the fresh pool actually does the work
        decoder = SlowDecoder(wrapped=_EmittingDecoder(), hang=True, at=(0,))
        stage = ParallelAnalysisStage(
            {"wifi": decoder}, workers=1, timeout_per_range=0.1,
            on_error="degrade", obs=obs,
        )
        try:
            buffer, ranges = _fake_inputs(1)
            packets, _, _ = stage.run(buffer, ranges)
            assert packets == []
            assert stage.leak_rebuilds == 0
            # every slot is now leaked; the next run must rebuild
            packets, _, _ = stage.run(buffer, ranges)
            assert stage.leak_rebuilds == 1
            assert len(packets) == 1
            assert obs.registry.value(
                "rfdump_parallel_pool_restarts_total") == 1
        finally:
            decoder.release()
            stage.close()


# -- streaming backpressure --------------------------------------------------

class TestStreamingBackpressure:
    def test_overrunning_windows_raise_level_and_shed(self, wifi_trace):
        monitor = StreamingMonitor(config=MonitorConfig(
            protocols=("wifi",), deadline_ms=0.001,  # 1 us: always over
        ))
        reports = [
            monitor.process(window)
            for window in split_windows(wifi_trace.buffer, 160_000)
        ]
        monitor.flush()
        scheduler = monitor.monitor.deadline_scheduler
        assert monitor.deadline_misses == len(reports)
        assert scheduler.controller.level > 0.0
        # the budget is pre-expired at admission, so every dispatched
        # range was shed before demodulation and nothing decoded
        assert monitor.ranges_shed > 0
        assert monitor.packets == []
        shed_records = [e for r in reports for e in r.errors
                        if e.action == "shed"]
        assert len(shed_records) == monitor.ranges_shed
        assert all(r.latency_seconds > 0.0 for r in reports)
        assert all(r.deadline_missed for r in reports)

    def test_no_deadline_means_no_scheduler_and_no_overhead(self, wifi_trace):
        monitor = StreamingMonitor(config=MonitorConfig(protocols=("wifi",)))
        for window in split_windows(wifi_trace.buffer, 160_000):
            report = monitor.process(window)
            assert not report.deadline_missed
            assert report.latency_seconds > 0.0
        monitor.flush()
        assert monitor.monitor.deadline_scheduler is None
        assert monitor.deadline_misses == 0
        assert monitor.ranges_shed == 0


# -- Histogram.quantile ------------------------------------------------------

class TestHistogramQuantile:
    def _hist(self):
        return MetricsRegistry().histogram("h_seconds", buckets=(0.1, 1.0))

    def test_empty_histogram_reports_zero(self):
        assert self._hist().quantile(0.5) == 0.0

    def test_conservative_bucket_upper_bound(self):
        hist = self._hist()
        for _ in range(9):
            hist.observe(0.05)
        hist.observe(0.5)
        assert hist.quantile(0.5) == 0.1
        assert hist.quantile(0.99) == 1.0
        assert hist.quantile(0.0) == 0.1  # rank floors at 1

    def test_overflow_bucket_is_inf(self):
        hist = self._hist()
        hist.observe(5.0)
        assert hist.quantile(0.5) == float("inf")

    def test_out_of_range_q_rejected(self):
        with pytest.raises(ValueError):
            self._hist().quantile(1.5)


# -- the rfbench latency SLO gate --------------------------------------------

def _result(name, meta):
    return types.SimpleNamespace(name=name, meta=meta)


class TestRfbenchLatencyGate:
    def test_parse_ok(self):
        assert _parse_latency_requirements(["window_latency:0.45"]) == [
            ("window_latency", 0.45)
        ]

    @pytest.mark.parametrize("spec", ["nocolon", ":0.45", "name:abc",
                                      "name:-1"])
    def test_parse_rejects_bad_specs(self, spec):
        with pytest.raises(SystemExit):
            _parse_latency_requirements([spec])

    def test_gate_passes_under_limit(self, capsys):
        results = [_result("window_latency",
                           {"latency": {"p99": 0.08, "p50": 0.05,
                                        "windows": 10}})]
        assert _check_latency_requirements(
            results, [("window_latency", 0.45)]) == []
        assert "meets the 450.0ms SLO" in capsys.readouterr().out

    def test_gate_fails_over_limit(self):
        results = [_result("window_latency",
                           {"latency": {"p99": 0.9, "p50": 0.1,
                                        "windows": 10}})]
        (message,) = _check_latency_requirements(
            results, [("window_latency", 0.45)])
        assert "exceeds" in message

    def test_gate_fails_without_latency_report(self):
        (message,) = _check_latency_requirements(
            [_result("peak_detection", {"tags": []})],
            [("peak_detection", 0.45)])
        assert "no latency report" in message
        assert _check_latency_requirements([], [("missing", 0.1)])


class TestRfdumpCli:
    def test_deadline_flag_parsed(self):
        args = build_rfdump_parser().parse_args(
            ["trace.iq", "--deadline-ms", "100"])
        assert args.deadline_ms == 100.0
        assert build_rfdump_parser().parse_args(
            ["trace.iq"]).deadline_ms is None


# -- the ISSUE acceptance scenario -------------------------------------------

class TestAcceptance:
    def test_stalled_decoder_is_shed_others_byte_identical(self, mixed_trace):
        """One permanently-stalled demodulator under a deadline: the run
        completes within 2x budget, the stalled protocol's ranges are
        recorded as shed/timeout, and the healthy protocol's packets are
        byte-identical to the fault-free run."""
        config = MonitorConfig(
            protocols=("wifi", "bluetooth"), workers=2,
            on_error="degrade", timeout=0.1, deadline_ms=2_000.0,
        )
        baseline = RFDumpMonitor(config=config)
        with baseline.parallel_stage:
            clean = baseline.process(mixed_trace.buffer)
        clean_bt = [p for p in clean.packets if p.protocol == "bluetooth"]
        assert clean_bt  # the comparison must compare something

        monitor = RFDumpMonitor(config=config)
        stage = monitor.parallel_stage
        hang = SlowDecoder(wrapped=stage.decoders["wifi"], hang=True)
        stage.decoders["wifi"] = hang
        try:
            report = monitor.process(mixed_trace.buffer)
            # within 2x the configured window budget despite the stall
            assert report.latency_seconds < 2 * 2.0
            wifi_records = [e for e in report.errors if e.component == "wifi"]
            assert wifi_records
            assert all(e.action in ("timeout", "shed") for e in wifi_records)
            assert [p for p in report.packets if p.protocol == "wifi"] == []
            faulted_bt = [p for p in report.packets
                          if p.protocol == "bluetooth"]
            assert faulted_bt == clean_bt
            assert monitor.ranges_shed >= 1
        finally:
            hang.release()
            stage.close()
