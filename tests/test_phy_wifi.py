"""Tests for repro.phy.wifi: the full 802.11b modem."""

import numpy as np
import pytest

from repro.errors import DecodeError, SyncError
from repro.phy.wifi import WifiDemodulator, WifiModulator
from repro.phy.wifi_mac import build_ack_frame, build_data_frame


@pytest.fixture(scope="module")
def modem():
    return WifiModulator(8e6), WifiDemodulator(8e6)


def _embed(wave, lead=300, tail=300, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    rx[lead : lead + wave.size] += wave
    return rx


class TestModulator:
    def test_waveform_length_1mbps(self, modem):
        mod, _ = modem
        mpdu = build_data_frame(1, 2, b"x" * 36)  # 64-byte MPDU
        wave = mod.modulate(mpdu, 1.0)
        # 192 us PLCP + 512 us payload = 704 us = 5632 samples
        assert wave.size == 5632

    def test_2mbps_payload_half_airtime(self, modem):
        mod, _ = modem
        mpdu = build_data_frame(1, 2, b"x" * 36)
        assert mod.modulate(mpdu, 2.0).size == (192 + 256) * 8

    def test_cck_rates_render(self, modem):
        mod, _ = modem
        mpdu = build_data_frame(1, 2, b"x" * 36)
        for rate in (5.5, 11.0):
            wave = mod.modulate(mpdu, rate)
            assert wave.size > 192 * 8

    def test_unit_envelope(self, modem):
        mod, _ = modem
        wave = mod.modulate(build_ack_frame(1), 1.0)
        assert np.allclose(np.abs(wave), 1.0, atol=1e-5)

    def test_rejects_unknown_rate(self, modem):
        mod, _ = modem
        with pytest.raises(ValueError):
            mod.modulate(b"\x00" * 20, 3.0)

    def test_rejects_fractional_sps(self):
        with pytest.raises(ValueError):
            WifiModulator(2.5e6)

    def test_frame_airtime(self, modem):
        mod, _ = modem
        assert mod.frame_airtime(125, 1.0) == pytest.approx(1192e-6)
        assert mod.frame_airtime(125, 2.0) == pytest.approx(692e-6)


class TestDemodulator:
    @pytest.mark.parametrize("rate", [1.0, 2.0])
    def test_round_trip(self, modem, rate):
        mod, dem = modem
        mpdu = build_data_frame(3, 4, bytes(range(64)), seq=9)
        rx = _embed(mod.modulate(mpdu, rate))
        packet = dem.demodulate(rx)
        assert packet.rate_mbps == rate
        assert packet.mpdu == mpdu
        assert packet.fcs_ok
        assert packet.mac.seq == 9

    def test_start_sample_estimate(self, modem):
        mod, dem = modem
        rx = _embed(mod.modulate(build_ack_frame(1), 1.0), lead=504)
        packet = dem.demodulate(rx)
        assert abs(packet.start_sample - 504) <= 48

    def test_cck_header_only(self, modem):
        mod, dem = modem
        mpdu = build_data_frame(1, 2, b"y" * 100)
        rx = _embed(mod.modulate(mpdu, 11.0))
        packet = dem.demodulate(rx)
        assert packet.header_only
        assert packet.rate_mbps == 11.0
        assert packet.plcp_header.mpdu_bytes == len(mpdu)

    def test_headers_only_mode(self, modem):
        mod, _ = modem
        dem = WifiDemodulator(8e6, decode_payload=False)
        mpdu = build_data_frame(1, 2, b"z" * 50)
        packet = dem.demodulate(_embed(mod.modulate(mpdu, 1.0)))
        assert packet.header_only
        assert packet.mpdu == b""

    def test_noise_only_raises(self, modem):
        _, dem = modem
        rng = np.random.default_rng(5)
        noise = (rng.normal(size=20000) + 1j * rng.normal(size=20000)).astype(
            np.complex64
        )
        with pytest.raises(DecodeError):
            dem.demodulate(noise)

    def test_too_short_raises(self, modem):
        _, dem = modem
        with pytest.raises(SyncError):
            dem.demodulate(np.ones(100, dtype=np.complex64))

    def test_truncated_payload_raises(self, modem):
        mod, dem = modem
        mpdu = build_data_frame(1, 2, b"w" * 200)
        wave = mod.modulate(mpdu, 1.0)
        with pytest.raises(DecodeError):
            dem.demodulate(_embed(wave[: wave.size // 2], tail=0))

    def test_try_demodulate_returns_none(self, modem):
        _, dem = modem
        assert dem.try_demodulate(np.ones(100, dtype=np.complex64)) is None

    def test_chip_phase_offset_tolerated(self, modem):
        mod, dem = modem
        mpdu = build_ack_frame(2)
        wave = mod.modulate(mpdu, 1.0, chip_phase=0.5)
        packet = dem.demodulate(_embed(wave, seed=2))
        assert packet.mpdu == mpdu

    def test_small_cfo_tolerated(self, modem):
        mod, dem = modem
        mpdu = build_data_frame(1, 2, b"q" * 30)
        wave = mod.modulate(mpdu, 1.0)
        n = np.arange(wave.size)
        wave = (wave * np.exp(2j * np.pi * 3e3 * n / 8e6)).astype(np.complex64)
        packet = dem.demodulate(_embed(wave, seed=3))
        assert packet.mpdu == mpdu

    def test_low_snr_fails_gracefully(self, modem):
        mod, dem = modem
        mpdu = build_data_frame(1, 2, b"r" * 30)
        rx = _embed(mod.modulate(mpdu, 1.0), noise=2.0, seed=4)
        # either decodes or raises DecodeError; never crashes
        assert dem.try_demodulate(rx) is None or True
