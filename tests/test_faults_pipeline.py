"""Detector crashes through the error-policy layer and circuit breaker."""

import pytest

from repro import RFDumpMonitor
from repro.core.config import MonitorConfig
from repro.core.pipeline import default_detectors
from repro.errors import DetectorCrashError, RFDumpError
from repro.faults import CrashingDetector
from repro.obs import Observability


def _detectors(crasher):
    return default_detectors(("wifi",), ("timing", "phase")) + [crasher]


@pytest.fixture(scope="module")
def baseline(wifi_trace):
    return RFDumpMonitor(protocols=("wifi",)).process(wifi_trace.buffer)


def _classification_keys(report):
    return sorted((c.peak.start_sample, c.detector)
                  for c in report.classifications)


class TestDegrade:
    def test_healthy_detectors_unaffected(self, wifi_trace, baseline):
        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(protocols=("wifi",), on_error="degrade"),
        )
        report = monitor.process(wifi_trace.buffer)
        assert crasher.crashes == 1
        assert _classification_keys(report) == _classification_keys(baseline)
        assert len(report.packets) == len(baseline.packets)

    def test_errors_and_counters_recorded(self, wifi_trace):
        obs = Observability()
        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(
                protocols=("wifi",), on_error="degrade", obs=obs
            ),
        )
        report = monitor.process(wifi_trace.buffer)
        (record,) = [e for e in report.errors if e.stage == "detector"]
        assert record.component == crasher.name
        assert record.error == "InjectedFault"
        assert record.action == "quarantined"
        assert report.degraded
        assert obs.registry.value(
            "rfdump_detector_errors_total", detector=crasher.name
        ) == 1

    def test_circuit_breaker_trips_after_repeated_crashes(self, wifi_trace):
        obs = Observability()
        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(
                protocols=("wifi",), on_error="degrade", obs=obs
            ),
        )
        for _ in range(4):
            report = monitor.process(wifi_trace.buffer)
        # the 4th window never reached the quarantined detector
        assert crasher.calls == 3
        assert monitor.quarantined_detectors == (crasher.name,)
        assert report.quarantined_detectors == (crasher.name,)
        reg = obs.registry
        assert reg.value("rfdump_detector_circuit_trips_total") == 1
        assert reg.value(
            "rfdump_detector_circuit_open", detector=crasher.name
        ) == 1

    def test_readmit_gives_detector_another_chance(self, wifi_trace):
        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(protocols=("wifi",), on_error="degrade"),
        )
        for _ in range(3):
            monitor.process(wifi_trace.buffer)
        assert monitor.quarantined_detectors
        monitor.readmit_detectors()
        assert monitor.quarantined_detectors == ()
        monitor.process(wifi_trace.buffer)
        assert crasher.calls == 4

    def test_intermittent_crash_resets_breaker(self, wifi_trace):
        # two crashes, a healthy call, two more crashes: never 3 in a
        # row, so the breaker must not trip
        crasher = CrashingDetector(at=(0, 1, 3, 4))
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(protocols=("wifi",), on_error="degrade"),
        )
        for _ in range(5):
            monitor.process(wifi_trace.buffer)
        assert crasher.calls == 5
        assert monitor.quarantined_detectors == ()


class TestSkip:
    def test_skip_also_quarantines_per_window(self, wifi_trace, baseline):
        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(protocols=("wifi",), on_error="skip"),
        )
        report = monitor.process(wifi_trace.buffer)
        assert _classification_keys(report) == _classification_keys(baseline)
        assert [e.action for e in report.errors] == ["quarantined"]


class TestRaise:
    def test_typed_error_names_the_detector(self, wifi_trace):
        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(protocols=("wifi",), on_error="raise"),
        )
        with pytest.raises(DetectorCrashError) as excinfo:
            monitor.process(wifi_trace.buffer)
        assert isinstance(excinfo.value, RFDumpError)
        assert excinfo.value.detector == crasher.name


class TestLegacy:
    def test_default_mode_propagates_raw_exception(self, wifi_trace):
        from repro.faults import InjectedFault

        crasher = CrashingDetector(at=None)
        monitor = RFDumpMonitor(
            detectors=_detectors(crasher),
            config=MonitorConfig(protocols=("wifi",)),
        )
        with pytest.raises(InjectedFault):
            monitor.process(wifi_trace.buffer)


class TestWrappedDetector:
    def test_wrapped_detector_delegates_when_healthy(self, wifi_trace,
                                                     baseline):
        from repro.core.detectors import WifiSifsTimingDetector

        crasher = CrashingDetector(wrapped=WifiSifsTimingDetector(), at=())
        monitor = RFDumpMonitor(
            detectors=[crasher],
            config=MonitorConfig(protocols=("wifi",), on_error="degrade"),
        )
        report = monitor.process(wifi_trace.buffer)
        assert crasher.protocol == "wifi"
        assert report.errors == []
        wrapped_keys = {
            c.peak.start_sample for c in baseline.classifications
            if c.detector == WifiSifsTimingDetector().name
        }
        assert {c.peak.start_sample
                for c in report.classifications} == wrapped_keys
