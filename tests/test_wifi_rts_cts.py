"""Tests for RTS/CTS protection exchanges."""

import pytest

from repro import RFDumpMonitor, Scenario, WifiPingSession, packet_miss_rate
from repro.constants import WIFI_SIFS
from repro.phy.wifi_mac import (
    build_cts_frame,
    build_rts_frame,
    parse_mac_frame,
)


class TestControlFrames:
    def test_rts_round_trip(self):
        frame = build_rts_frame(1, 2, duration=300)
        parsed = parse_mac_frame(frame)
        assert parsed.is_rts
        assert not parsed.is_cts
        assert parsed.duration == 300
        assert parsed.addr2 is not None  # RTS carries a TA

    def test_cts_round_trip(self):
        frame = build_cts_frame(7)
        parsed = parse_mac_frame(frame)
        assert parsed.is_cts
        assert parsed.addr2 is None

    def test_sizes(self):
        assert len(build_rts_frame(1, 2)) == 20
        assert len(build_cts_frame(1)) == 14


class TestRtsCtsSession:
    def test_event_sequence(self):
        events = WifiPingSession(n_pings=1, rts_cts=True).events()
        kinds = [e.kind for e in events]
        assert kinds == ["rts", "cts", "data", "ack", "rts", "cts", "data", "ack"]

    def test_sifs_spacing_throughout(self):
        events = WifiPingSession(n_pings=1, rts_cts=True).events()
        for prev, nxt in zip(events[:4], events[1:4]):
            gap = nxt.time - prev.end_time
            assert gap == pytest.approx(WIFI_SIFS, abs=1e-9)

    def test_end_to_end_detection_and_decode(self):
        scenario = Scenario(duration=0.05, seed=71)
        scenario.add(
            WifiPingSession(n_pings=2, snr_db=20.0, interval=22e-3,
                            payload_size=200, rts_cts=True)
        )
        trace = scenario.render()
        report = RFDumpMonitor(protocols=("wifi",)).process(trace.buffer)
        truth = trace.ground_truth
        # every frame in the four-way exchange is SIFS-adjacent: the
        # timing detector gets them all
        miss = packet_miss_rate(
            truth, report.classifications_for("wifi"), "wifi"
        )
        assert miss == 0.0
        decoded = report.packets_for("wifi")
        assert len(decoded) == len(truth.observable("wifi"))
        kinds = {"rts": 0, "cts": 0}
        for p in decoded:
            mac = p.decoded.mac
            if mac.is_rts:
                kinds["rts"] += 1
            elif mac.is_cts:
                kinds["cts"] += 1
        assert kinds == {"rts": 4, "cts": 4}
