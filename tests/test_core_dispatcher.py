"""Tests for repro.core.dispatcher."""

import pytest

from repro.core.detectors.base import Classification
from repro.core.dispatcher import Dispatcher
from repro.core.metadata import Peak


def _cls(start, end, protocol="wifi", channel=None, confidence=0.8, index=0):
    return Classification(
        peak=Peak(start, end, 1.0, 1.0, index=index),
        protocol=protocol, detector="test", confidence=confidence,
        channel=channel,
    )


class TestAlignment:
    def test_chunk_aligned(self):
        ranges = Dispatcher(200).dispatch([_cls(250, 1150)], 10000)
        r = ranges["wifi"][0]
        assert r.start_sample == 200
        assert r.end_sample == 1200

    def test_clamped_to_buffer(self):
        ranges = Dispatcher(200).dispatch([_cls(0, 999999)], 1000)
        r = ranges["wifi"][0]
        assert r.start_sample == 0
        assert r.end_sample == 1000

    def test_excess_forwarded_is_bounded(self):
        # chunk granularity: at most one chunk of excess on each side
        r = Dispatcher(200).dispatch([_cls(399, 401)], 10000)["wifi"][0]
        assert r.length <= 400


class TestMerging:
    def test_same_peak_from_two_detectors_merges(self):
        cls = [_cls(250, 1150), _cls(250, 1150)]
        ranges = Dispatcher(200).dispatch(cls, 10000)
        assert len(ranges["wifi"]) == 1

    def test_overlapping_peaks_merge(self):
        cls = [_cls(250, 1150, index=0), _cls(1100, 2000, index=1)]
        ranges = Dispatcher(200).dispatch(cls, 10000)
        assert len(ranges["wifi"]) == 1
        assert ranges["wifi"][0].peak_indices == [0, 1]

    def test_disjoint_peaks_stay_separate(self):
        cls = [_cls(250, 1150, index=0), _cls(5000, 6000, index=1)]
        ranges = Dispatcher(200).dispatch(cls, 10000)
        assert len(ranges["wifi"]) == 2

    def test_protocols_partitioned(self):
        cls = [_cls(250, 1150), _cls(250, 1150, protocol="bluetooth")]
        ranges = Dispatcher(200).dispatch(cls, 10000)
        assert set(ranges) == {"wifi", "bluetooth"}

    def test_confidence_is_max(self):
        cls = [_cls(250, 1150, confidence=0.5), _cls(250, 1150, confidence=0.9)]
        r = Dispatcher(200).dispatch(cls, 10000)["wifi"][0]
        assert r.confidence == 0.9


class TestChannelHints:
    def test_hint_preserved(self):
        r = Dispatcher(200).dispatch(
            [_cls(250, 1150, protocol="bluetooth", channel=40)], 10000
        )["bluetooth"][0]
        assert r.channel == 40

    def test_none_plus_hint_resolves_to_hint(self):
        cls = [
            _cls(250, 1150, protocol="bluetooth", channel=None),
            _cls(250, 1150, protocol="bluetooth", channel=40),
        ]
        r = Dispatcher(200).dispatch(cls, 10000)["bluetooth"][0]
        assert r.channel == 40

    def test_conflicting_hints_drop_to_none(self):
        cls = [
            _cls(250, 1150, protocol="bluetooth", channel=40, index=0),
            _cls(1100, 2000, protocol="bluetooth", channel=41, index=1),
        ]
        r = Dispatcher(200).dispatch(cls, 10000)["bluetooth"][0]
        assert r.channel is None
        assert r.channel_conflict

    def test_missing_first_hint_upgraded_by_second_peak(self):
        """Regression: the seed appended the new peak index before the
        reconciliation, so a None-channel first peak could never be
        upgraded by a later concrete hint."""
        cls = [
            _cls(250, 1150, protocol="bluetooth", channel=None, index=0),
            _cls(1100, 2000, protocol="bluetooth", channel=40, index=1),
        ]
        r = Dispatcher(200).dispatch(cls, 10000)["bluetooth"][0]
        assert r.channel == 40
        assert r.peak_indices == [0, 1]

    def test_concrete_hint_survives_later_missing_hint(self):
        """A hint-less classification carries no information and must
        not erase a concrete channel hint."""
        cls = [
            _cls(250, 1150, protocol="bluetooth", channel=40, index=0),
            _cls(1100, 2000, protocol="bluetooth", channel=None, index=1),
        ]
        r = Dispatcher(200).dispatch(cls, 10000)["bluetooth"][0]
        assert r.channel == 40

    def test_conflict_poisons_despite_later_agreement(self):
        cls = [
            _cls(250, 1150, protocol="bluetooth", channel=40, index=0),
            _cls(1100, 2000, protocol="bluetooth", channel=41, index=1),
            _cls(1900, 2600, protocol="bluetooth", channel=41, index=2),
        ]
        r = Dispatcher(200).dispatch(cls, 10000)["bluetooth"][0]
        assert r.channel is None


class TestAccounting:
    def test_forwarded_samples(self):
        cls = [_cls(250, 1150, index=0), _cls(5000, 6000, index=1)]
        ranges = Dispatcher(200).dispatch(cls, 10000)
        counts = Dispatcher.forwarded_samples(ranges)
        assert counts["wifi"] == (1200 - 200) + (6000 - 5000)

    def test_rejects_bad_chunk(self):
        with pytest.raises(ValueError):
            Dispatcher(0)
