"""Failure injection: detector/demodulator robustness under impairments."""

import numpy as np
import pytest

from repro import RFDumpMonitor, Scenario, WifiPingSession, packet_miss_rate
from repro.emulator import BluetoothL2PingSession, ChannelImpairments


def _run(impairments, seed=91, protocols=("wifi",)):
    scenario = Scenario(duration=0.06, seed=seed, impairments=impairments)
    scenario.add(WifiPingSession(n_pings=2, snr_db=20.0, interval=25e-3, seed=seed))
    trace = scenario.render()
    monitor = RFDumpMonitor(protocols=protocols, demodulate=True)
    report = monitor.process(trace.buffer)
    miss = packet_miss_rate(
        trace.ground_truth, report.classifications_for("wifi"), "wifi"
    )
    decoded = len(report.packets_for("wifi"))
    truth = len(trace.ground_truth.observable("wifi"))
    return miss, decoded, truth


class TestImpairmentPrimitives:
    def test_multipath_adds_echo(self):
        imp = ChannelImpairments(multipath_delay=5, multipath_gain=0.5)
        x = np.zeros(20, dtype=np.complex64)
        x[0] = 1.0
        y = imp.apply_multipath(x)
        assert y[0] == 1.0
        assert y[5] == pytest.approx(0.5)

    def test_multipath_disabled_is_identity(self):
        imp = ChannelImpairments()
        x = np.ones(10, dtype=np.complex64)
        assert imp.apply_multipath(x) is x

    def test_adc_quantization_steps(self):
        imp = ChannelImpairments(adc_bits=4, adc_full_scale=1.0)
        x = (np.linspace(-0.9, 0.9, 50) + 0.1j).astype(np.complex64)
        y = imp.apply_frontend(x)
        step = 1.0 / 8
        assert np.allclose(np.mod(y.real / step, 1.0), 0.0, atol=1e-5)
        assert len(np.unique(y.real)) <= 16

    def test_adc_clips_at_full_scale(self):
        imp = ChannelImpairments(adc_bits=8, adc_full_scale=1.0)
        x = np.array([5.0 + 5.0j], dtype=np.complex64)
        y = imp.apply_frontend(x)
        assert y[0].real <= 1.0

    def test_iq_imbalance_changes_image(self):
        imp = ChannelImpairments(iq_gain_imbalance_db=1.0, iq_phase_deg=3.0)
        n = np.arange(4096)
        tone = np.exp(2j * np.pi * 0.1 * n).astype(np.complex64)
        y = imp.apply_frontend(tone)
        spec = np.abs(np.fft.fft(y))
        main = spec[int(0.1 * 4096)]
        image = spec[4096 - int(0.1 * 4096)]
        assert image > 0.01 * main  # an image tone appeared
        assert image < main

    def test_cfo_draw(self):
        imp = ChannelImpairments(cfo_std_hz=10e3)
        rng = np.random.default_rng(0)
        draws = [imp.random_cfo(rng) for _ in range(200)]
        assert np.std(draws) == pytest.approx(10e3, rel=0.2)
        assert ChannelImpairments().random_cfo(rng) == 0.0


class TestDetectionUnderImpairments:
    def test_usrp_like_frontend_harmless(self):
        """12-bit ADC + 20 kHz CFO (a realistic USRP capture): no misses."""
        imp = ChannelImpairments(cfo_std_hz=20e3, adc_bits=12)
        miss, decoded, truth = _run(imp)
        assert miss == 0.0
        assert decoded == truth

    def test_mild_multipath_harmless_to_detection(self):
        imp = ChannelImpairments(multipath_delay=3, multipath_gain=0.25)
        miss, decoded, truth = _run(imp)
        assert miss == 0.0

    def test_brutal_adc_degrades(self):
        """A 3-bit ADC destroys decode fidelity while energy detection
        (and hence timing classification) mostly survives."""
        imp = ChannelImpairments(adc_bits=3)
        miss, decoded, truth = _run(imp)
        assert miss <= 0.5  # timing/phase still sees most packets
        clean_miss, clean_decoded, _ = _run(None)
        assert clean_decoded == truth
        assert decoded <= clean_decoded

    def test_bluetooth_with_cfo_inside_channel(self):
        """Residual CFO well under a channel width: GFSK unaffected."""
        imp = ChannelImpairments(cfo_std_hz=30e3)
        scenario = Scenario(duration=0.4, seed=92, impairments=imp)
        scenario.add(BluetoothL2PingSession(n_pings=50, snr_db=20.0))
        trace = scenario.render()
        monitor = RFDumpMonitor(protocols=("bluetooth",), demodulate=False)
        report = monitor.process(trace.buffer)
        miss = packet_miss_rate(
            trace.ground_truth, report.classifications_for("bluetooth"),
            "bluetooth",
        )
        assert miss <= 0.3  # first-of-session and collisions only
