"""Tests for CCK demodulation at chip-aligned rates ("USRP2 mode")."""

import numpy as np
import pytest

from repro.phy.cck import CckDemodulator, cck_chips_11mbps, cck_chips_5_5mbps
from repro.phy.wifi import WifiDemodulator, WifiModulator
from repro.phy.wifi_mac import build_data_frame

FS = 22e6


@pytest.fixture(scope="module")
def modem22():
    return WifiModulator(FS), WifiDemodulator(FS)


class TestCckDemodulator:
    def test_rejects_misaligned_rate(self):
        with pytest.raises(ValueError):
            CckDemodulator(8e6, 11.0)
        with pytest.raises(ValueError):
            CckDemodulator(22e6, 2.0)

    def test_template_counts(self):
        assert CckDemodulator(FS, 11.0)._templates.shape == (64, 16)
        assert CckDemodulator(FS, 5.5)._templates.shape == (4, 16)

    @pytest.mark.parametrize("rate,chipper", [
        (11.0, cck_chips_11mbps), (5.5, cck_chips_5_5mbps),
    ])
    def test_chip_level_round_trip(self, rate, chipper, rng):
        decoder = CckDemodulator(FS, rate)
        bpc = decoder.bits_per_codeword()
        bits = rng.integers(0, 2, 20 * bpc).astype(np.uint8)
        chips = chipper(bits, 0.0)
        samples = np.repeat(chips, decoder.spc)
        out = decoder.demodulate(samples, bits.size, reference_phase=0.0)
        assert np.array_equal(out, bits)

    def test_rotation_cancels_with_reference(self, rng):
        decoder = CckDemodulator(FS, 11.0)
        bits = rng.integers(0, 2, 80).astype(np.uint8)
        chips = cck_chips_11mbps(bits, initial_phase=0.7)
        samples = np.repeat(chips, decoder.spc) * np.exp(1j * 1.1)
        out = decoder.demodulate(samples, 80, reference_phase=0.7 + 1.1)
        assert np.array_equal(out, bits)

    def test_rejects_bad_bit_count(self):
        decoder = CckDemodulator(FS, 11.0)
        with pytest.raises(ValueError):
            decoder.demodulate(np.ones(160, dtype=complex), 12)

    def test_rejects_short_input(self):
        decoder = CckDemodulator(FS, 11.0)
        with pytest.raises(ValueError):
            decoder.demodulate(np.ones(10, dtype=complex), 8)


class TestWifi22Msps:
    def _rx(self, wave, seed=0, noise=0.05):
        rng = np.random.default_rng(seed)
        rx = noise * (
            rng.normal(size=wave.size + 800) + 1j * rng.normal(size=wave.size + 800)
        ).astype(np.complex64)
        rx[400 : 400 + wave.size] += wave
        return rx

    @pytest.mark.parametrize("rate", [1.0, 2.0, 5.5, 11.0])
    def test_all_rates_decode(self, modem22, rate, rng):
        mod, dem = modem22
        payload = bytes(rng.integers(0, 256, 180, dtype=np.uint8))
        mpdu = build_data_frame(1, 2, payload, seq=int(rate))
        packet = dem.demodulate(self._rx(mod.modulate(mpdu, rate), seed=int(rate)))
        assert packet.rate_mbps == rate
        assert not packet.header_only
        assert packet.mpdu == mpdu
        assert packet.fcs_ok

    def test_8msps_still_header_only(self):
        mod8, dem8 = WifiModulator(8e6), WifiDemodulator(8e6)
        assert not dem8.cck_capable
        mpdu = build_data_frame(1, 2, b"x" * 100)
        packet = dem8.demodulate(self._rx(mod8.modulate(mpdu, 11.0)))
        assert packet.header_only

    def test_channel_rotation(self, modem22):
        mod, dem = modem22
        mpdu = build_data_frame(1, 2, b"r" * 80)
        wave = (mod.modulate(mpdu, 11.0) * np.exp(1j * 0.9)).astype(np.complex64)
        packet = dem.demodulate(self._rx(wave, seed=7))
        assert packet.mpdu == mpdu

    def test_scenario_at_22msps(self):
        """Full pipeline at USRP2 rate decodes a CCK-rate exchange."""
        from repro import RFDumpMonitor, Scenario, WifiPingSession

        scenario = Scenario(duration=0.03, sample_rate=FS, seed=66)
        scenario.add(
            WifiPingSession(n_pings=2, snr_db=20.0, interval=12e-3,
                            rate_mbps=11.0, payload_size=300)
        )
        trace = scenario.render()
        monitor = RFDumpMonitor(sample_rate=FS, protocols=("wifi",))
        report = monitor.process(trace.buffer)
        decoded = [p for p in report.packets if not p.info.get("header_only")]
        truth = trace.ground_truth.observable("wifi")
        assert len(decoded) == len(truth)
        assert {p.rate_mbps for p in decoded} == {11.0}
