"""Tests for multi-band scanning (emulator rendering + scanning monitor)."""

import pytest

from repro import BluetoothL2PingSession, Scenario, WifiPingSession
from repro.core.scanning import ScanningMonitor
from repro.emulator.scanning import ScanPlan, render_scan


class TestScanPlan:
    def test_dwell_sequence(self):
        plan = ScanPlan(centers=[2.41e9, 2.44e9], dwell=0.01)
        dwells = plan.dwells(0.035)
        assert len(dwells) == 4
        assert dwells[0].center_freq == 2.41e9
        assert dwells[1].center_freq == 2.44e9
        assert dwells[2].center_freq == 2.41e9  # cyclic
        assert dwells[-1].end_time == pytest.approx(0.035)

    def test_rejects_bad_plan(self):
        with pytest.raises(ValueError):
            ScanPlan(centers=[], dwell=0.01)
        with pytest.raises(ValueError):
            ScanPlan(centers=[2.4e9], dwell=0.0)


class TestRenderScan:
    @pytest.fixture(scope="class")
    def scan_windows(self):
        scenario = Scenario(duration=0.2, seed=44)
        scenario.add(
            BluetoothL2PingSession(n_pings=30, snr_db=20.0, interval_slots=6)
        )
        plan = ScanPlan(centers=[2.4125e9, 2.4415e9, 2.4705e9], dwell=0.02)
        return render_scan(scenario, plan)

    def test_window_count_and_sizes(self, scan_windows):
        assert len(scan_windows) == 10
        assert all(len(w.buffer) == 160000 for w in scan_windows)

    def test_absolute_sample_indices(self, scan_windows):
        assert scan_windows[3].buffer.start_sample == 3 * 160000

    def test_centers_cycle(self, scan_windows):
        centers = [w.dwell.center_freq for w in scan_windows[:3]]
        assert centers == [2.4125e9, 2.4415e9, 2.4705e9]

    def test_observability_depends_on_center(self, scan_windows):
        # different centers see different subsets of the hop sequence
        by_center = {}
        for w in scan_windows:
            truth = w.trace.ground_truth
            key = w.dwell.center_freq
            by_center[key] = len(truth.observable("bluetooth"))
        assert len(set(by_center.values())) > 1


class TestScanningMonitor:
    def test_busy_vs_idle_bands(self):
        # wifi sits in the monitored band; two other bands are idle
        scenario = Scenario(duration=0.12, seed=45)
        scenario.add(WifiPingSession(n_pings=8, snr_db=20.0, interval=14e-3))
        busy_center = scenario.center_freq
        plan = ScanPlan(
            centers=[busy_center, 2.4125e9 - 1e7, 2.47e9], dwell=0.01
        )
        # Wi-Fi renders at band center for whichever center is tuned, so
        # emulate idle bands by scanning a scenario with no traffic there:
        windows = render_scan(scenario, plan)
        # keep wifi only in its home band; idle elsewhere
        idle = Scenario(duration=0.12, seed=46)
        idle_windows = render_scan(idle, plan)
        mixed = [
            w if w.dwell.center_freq == busy_center else idle_windows[i]
            for i, w in enumerate(windows)
        ]
        monitor = ScanningMonitor(protocols=("wifi",), kinds=("timing",))
        monitor.scan(mixed)
        bands = monitor.bands
        assert bands[busy_center].occupancy > 0.2
        for center, band in bands.items():
            if center != busy_center:
                assert band.occupancy < 0.02
                assert band.n_peaks <= 2

    def test_noise_floor_carried_per_band(self):
        scenario = Scenario(duration=0.06, seed=47, noise_power=2.0)
        plan = ScanPlan(centers=[2.43e9, 2.45e9], dwell=0.01)
        windows = render_scan(scenario, plan)
        monitor = ScanningMonitor(protocols=("wifi",), kinds=("timing",))
        monitor.scan(windows)
        for band in monitor.bands.values():
            assert band.noise_floor == pytest.approx(2.0, rel=0.2)
            assert band.n_dwells == 3

    def test_summary_rows(self):
        scenario = Scenario(duration=0.04, seed=48)
        scenario.add(WifiPingSession(n_pings=2, snr_db=20.0, interval=15e-3))
        plan = ScanPlan(centers=[scenario.center_freq], dwell=0.02)
        monitor = ScanningMonitor(protocols=("wifi",), kinds=("timing",))
        monitor.scan(render_scan(scenario, plan))
        rows = monitor.summary_rows()
        assert len(rows) == 1
        assert rows[0]["dwells"] == 2
        assert rows[0]["occupancy (%)"] > 0
