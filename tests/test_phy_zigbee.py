"""Tests for repro.phy.zigbee."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.phy.zigbee import (
    ZigbeeDemodulator,
    ZigbeeModulator,
    build_frame,
    bytes_from_symbols,
    pn_table,
    symbols_from_bytes,
)


@pytest.fixture(scope="module")
def modem():
    return ZigbeeModulator(8e6), ZigbeeDemodulator(8e6)


def _embed(wave, lead=300, tail=200, noise=0.05, seed=0, phase=0.0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    rx[lead : lead + wave.size] += (wave * np.exp(1j * phase)).astype(np.complex64)
    return rx


class TestPnTable:
    def test_shape(self):
        assert pn_table().shape == (16, 32)

    def test_all_rows_distinct(self):
        table = pn_table()
        assert len({row.tobytes() for row in table}) == 16

    def test_near_orthogonal(self):
        table = 2.0 * pn_table().astype(np.float64) - 1.0
        gram = table @ table.T
        off_diag = gram - np.diag(np.diag(gram))
        assert np.max(np.abs(off_diag)) <= 8.0  # 802.15.4 cross-correlation bound

    def test_conjugate_structure(self):
        table = pn_table()
        assert np.array_equal(table[8][0::2], table[0][0::2])
        assert np.array_equal(table[8][1::2], table[0][1::2] ^ 1)


class TestSymbols:
    def test_round_trip(self):
        data = bytes(range(32))
        assert bytes_from_symbols(symbols_from_bytes(data)) == data

    def test_nibble_order(self):
        assert symbols_from_bytes(b"\xA7").tolist() == [0x7, 0xA]

    def test_rejects_odd_symbols(self):
        with pytest.raises(ValueError):
            bytes_from_symbols(np.array([1, 2, 3], dtype=np.uint8))


class TestFrame:
    def test_structure(self):
        frame = build_frame(b"hello")
        assert frame[:4] == bytes(4)
        assert frame[4] == 0xA7
        assert frame[5] == len(b"hello") + 2

    def test_rejects_oversize(self):
        with pytest.raises(ValueError):
            build_frame(bytes(126))


class TestModem:
    def test_round_trip(self, modem):
        mod, dem = modem
        psdu = bytes(range(60))
        packet = dem.demodulate(_embed(mod.modulate(psdu)))
        assert packet.psdu == psdu
        assert packet.fcs_ok

    def test_phase_rotation_tolerated(self, modem):
        mod, dem = modem
        psdu = b"rotated frame body"
        packet = dem.demodulate(_embed(mod.modulate(psdu), phase=1.1, seed=2))
        assert packet.psdu == psdu

    def test_start_sample(self, modem):
        mod, dem = modem
        packet = dem.demodulate(_embed(mod.modulate(b"pos"), lead=777, seed=3))
        assert abs(packet.start_sample - 777) <= dem.sps

    def test_noise_only_raises(self, modem):
        _, dem = modem
        rng = np.random.default_rng(4)
        noise = (rng.normal(size=30000) + 1j * rng.normal(size=30000)).astype(
            np.complex64
        )
        with pytest.raises(DecodeError):
            dem.demodulate(noise)

    def test_corrupted_fcs_raises(self, modem):
        mod, dem = modem
        wave = mod.modulate(b"fcs target")
        # stomp on the end of the frame where the FCS symbols live
        wave[-3 * dem.sps :] = 0
        with pytest.raises(DecodeError):
            dem.demodulate(_embed(wave, seed=5))

    def test_airtime(self, modem):
        mod, _ = modem
        assert mod.airtime(10) == pytest.approx((6 + 12) * 2 / 62500)

    def test_rejects_bad_sample_rate(self):
        with pytest.raises(ValueError):
            ZigbeeModulator(3e6)

    def test_empty_psdu(self, modem):
        mod, dem = modem
        packet = dem.demodulate(_embed(mod.modulate(b""), seed=6))
        assert packet.psdu == b""
