"""Per-rule positive/negative fixtures for repro.lint, analyzed in memory."""

import textwrap

import pytest

from repro.lint import SYNTAX_RULE, Severity, lint_source

PHY = "src/repro/phy/somemod.py"
DSP = "src/repro/dsp/somemod.py"
CORE = "src/repro/core/somemod.py"


def lint(code, path=CORE, **kwargs):
    return lint_source(textwrap.dedent(code), path=path, **kwargs)


def rules_of(findings):
    return [f.rule for f in findings]


class TestDeterminism:
    def test_time_time_flagged(self):
        findings = lint(
            """
            import time
            def stamp():
                return time.time()
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD101"]
        assert findings[0].severity == Severity.ERROR
        assert findings[0].line == 4

    def test_aliased_and_from_imports_resolved(self):
        findings = lint(
            """
            import time as _t
            from datetime import datetime
            a = _t.time()
            b = datetime.now()
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD101", "RFD101"]

    def test_timebase_not_flagged(self):
        assert lint(
            """
            def stamp(timebase, index):
                return timebase.seconds(index)
            """,
            path=PHY,
        ) == []

    def test_global_numpy_rng_flagged(self):
        findings = lint(
            """
            import numpy as np
            np.random.seed(0)
            x = np.random.normal(size=8)
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD102", "RFD102"]

    def test_stdlib_random_flagged(self):
        findings = lint(
            """
            import random
            x = random.random()
            """,
        )
        assert rules_of(findings) == ["RFD102"]

    def test_explicit_generator_allowed(self):
        assert lint(
            """
            import numpy as np
            def awgn(n, rng: np.random.Generator):
                rng2 = np.random.default_rng(7)
                return rng.normal(size=n)
            """,
            path=PHY,
        ) == []

    def test_perf_counter_outside_accounting_flagged(self):
        findings = lint(
            """
            import time
            t0 = time.perf_counter()
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD103"]

    @pytest.mark.parametrize("path", [
        "src/repro/core/accounting.py",
        "src/repro/core/parallel.py",
        "src/repro/core/pipeline.py",
        "src/repro/obs/tracing.py",
    ])
    def test_perf_counter_allowed_in_accounting_modules(self, path):
        assert lint(
            """
            import time
            t0 = time.perf_counter()
            """,
            path=path,
        ) == []


class TestDtype:
    def test_complex128_dtype_flagged_in_phy(self):
        findings = lint(
            """
            import numpy as np
            buf = np.zeros(16, dtype=np.complex128)
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD201"]

    def test_astype_complex_flagged_in_dsp(self):
        findings = lint(
            """
            import numpy as np
            def widen(x):
                return x.astype(complex)
            """,
            path=DSP,
        )
        assert rules_of(findings) == ["RFD201"]

    def test_complex64_not_flagged(self):
        assert lint(
            """
            import numpy as np
            buf = np.zeros(16, dtype=np.complex64)
            """,
            path=PHY,
        ) == []

    def test_scope_excludes_core(self):
        assert lint(
            """
            import numpy as np
            buf = np.zeros(16, dtype=np.complex128)
            """,
            path=CORE,
        ) == []

    def test_default_complex_exp_flagged(self):
        findings = lint(
            """
            import numpy as np
            def carrier(phases):
                return np.exp(1j * phases)
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD202"]

    def test_exp_with_immediate_cast_allowed(self):
        assert lint(
            """
            import numpy as np
            def carrier(phases):
                return np.exp(1j * phases).astype(np.complex64)
            """,
            path=PHY,
        ) == []

    def test_real_exp_allowed(self):
        assert lint(
            """
            import numpy as np
            def envelope(t):
                return np.exp(-t)
            """,
            path=PHY,
        ) == []


class TestConcurrency:
    def test_capturing_lambda_submit_flagged(self):
        findings = lint(
            """
            def run(pool, tasks):
                results = []
                for task in tasks:
                    pool.submit(lambda: results.append(task))
            """,
        )
        assert rules_of(findings) == ["RFD301"]
        assert "results" in findings[0].message
        assert "task" in findings[0].message

    def test_plain_function_submit_allowed(self):
        assert lint(
            """
            def run(pool, tasks, decode):
                return [pool.submit(decode, task) for task in tasks]
            """,
        ) == []

    def test_closed_lambda_allowed(self):
        # a lambda whose every name is one of its own parameters is safe
        assert lint(
            """
            def run(pool):
                return pool.submit(lambda x=1: x + x)
            """,
        ) == []


class TestReliability:
    def test_silent_except_exception_flagged(self):
        findings = lint(
            """
            def decode(buf):
                try:
                    return buf.demod()
                except Exception:
                    pass
            """,
        )
        assert rules_of(findings) == ["RFD302"]
        assert "Exception" in findings[0].message

    def test_bare_except_and_tuple_flagged(self):
        findings = lint(
            """
            def a(buf):
                try:
                    buf.demod()
                except:
                    return
            def b(buf):
                try:
                    buf.demod()
                except (ValueError, BaseException):
                    ...
            """,
        )
        assert rules_of(findings) == ["RFD302", "RFD302"]

    def test_silent_continue_flagged(self):
        findings = lint(
            """
            def drain(bufs):
                for buf in bufs:
                    try:
                        buf.demod()
                    except Exception:
                        continue
            """,
        )
        assert rules_of(findings) == ["RFD302"]

    def test_handler_that_records_allowed(self):
        assert lint(
            """
            def decode(buf, errors):
                try:
                    return buf.demod()
                except Exception as exc:
                    errors.append(exc)
                    return None
            """,
        ) == []

    def test_narrow_silent_handler_allowed(self):
        # a deliberately ignored *specific* exception is fine
        assert lint(
            """
            def close(pool):
                try:
                    pool.shutdown()
                except OSError:
                    pass
            """,
        ) == []

    def test_outside_core_not_flagged(self):
        assert lint(
            """
            def decode(buf):
                try:
                    return buf.demod()
                except Exception:
                    pass
            """,
            path=PHY,
        ) == []


class TestApiContracts:
    def test_config_attribute_assignment_flagged(self):
        findings = lint(
            """
            from repro.core.config import MonitorConfig
            cfg = MonitorConfig()
            cfg.workers = 4
            """,
        )
        assert rules_of(findings) == ["RFD401"]

    def test_object_setattr_on_config_flagged(self):
        findings = lint(
            """
            def tweak(config: "MonitorConfig"):
                object.__setattr__(config, "workers", 4)
            """,
        )
        assert rules_of(findings) == ["RFD401"]

    def test_self_config_mutation_flagged(self):
        findings = lint(
            """
            class Monitor:
                def set_workers(self, n):
                    self.config.workers = n
            """,
        )
        assert rules_of(findings) == ["RFD401"]

    def test_dataclasses_replace_allowed(self):
        assert lint(
            """
            from dataclasses import replace
            from repro.core.config import MonitorConfig
            cfg = MonitorConfig()
            cfg2 = replace(cfg, workers=4)
            """,
        ) == []

    def test_computed_metric_name_flagged(self):
        findings = lint(
            """
            def count(obs, protocol):
                obs.counter("rfdump_" + protocol).inc()
            """,
        )
        assert rules_of(findings) == ["RFD402"]

    def test_literal_and_constant_metric_names_allowed(self):
        assert lint(
            """
            METRIC = "rfdump_packets_total"
            def count(obs):
                obs.counter("rfdump_samples_total").inc()
                obs.gauge(METRIC, help="x").set(1)
            """,
        ) == []

    def test_numpy_histogram_not_confused_with_registry(self):
        assert lint(
            """
            import numpy as np
            def hist(x, edges):
                counts, _ = np.histogram(x, edges)
                return counts
            """,
        ) == []

    def test_obs_package_itself_out_of_scope(self):
        assert lint(
            """
            class Observability:
                def counter(self, name, help=""):
                    return self.registry.counter(name, help=help)
            """,
            path="src/repro/obs/__init__.py",
        ) == []


class TestTypingHygiene:
    def test_implicit_optional_parameter_flagged(self):
        findings = lint(
            """
            def __init__(self, name: str = None):
                pass
            """,
        )
        assert rules_of(findings) == ["RFD501"]

    def test_implicit_optional_field_flagged(self):
        findings = lint(
            """
            from dataclasses import dataclass
            @dataclass
            class Result:
                noise_floor: float = None
            """,
        )
        assert rules_of(findings) == ["RFD501"]

    @pytest.mark.parametrize("annotation", [
        "Optional[str]", '"Optional[str]"', "Union[str, None]",
        "Any", "object",
    ])
    def test_none_admitting_annotations_allowed(self, annotation):
        assert lint(
            f"""
            from typing import Any, Optional, Union
            def f(name: {annotation} = None):
                pass
            """,
        ) == []

    def test_unannotated_default_allowed(self):
        assert lint(
            """
            def f(name=None):
                pass
            """,
        ) == []

    def test_kwonly_parameter_checked(self):
        findings = lint(
            """
            def f(*, window: int = None):
                pass
            """,
        )
        assert rules_of(findings) == ["RFD501"]


class TestPerf:
    HOT = "src/repro/dsp/energy.py"

    def test_loop_in_hot_path_flagged(self):
        findings = lint(
            """
            def total(xs):
                acc = 0.0
                for x in xs:
                    acc += x
                return acc
            """,
            path=self.HOT,
        )
        assert rules_of(findings) == ["RFD601"]
        assert findings[0].severity == Severity.WARNING
        assert findings[0].line == 4

    def test_while_loop_flagged(self):
        findings = lint(
            """
            def spin(n):
                while n > 0:
                    n -= 1
            """,
            path=self.HOT,
        )
        assert rules_of(findings) == ["RFD601"]

    def test_comprehensions_allowed(self):
        # record/list construction is fine; the rule targets statement
        # loops doing per-sample arithmetic
        assert lint(
            """
            def views(values, offsets):
                return [values[offsets[i]:offsets[i + 1]]
                        for i in range(offsets.size - 1)]
            """,
            path=self.HOT,
        ) == []

    def test_non_hot_path_modules_out_of_scope(self):
        assert lint(
            """
            def total(xs):
                acc = 0.0
                for x in xs:
                    acc += x
                return acc
            """,
            path=CORE,
        ) == []

    def test_noqa_suppresses_deliberate_loop(self):
        assert lint(
            """
            def merge(runs):
                out = []
                for r in runs:  # rfdump: noqa[RFD601]
                    out.append(r)
                return out
            """,
            path=self.HOT,
        ) == []


class TestSuppression:
    def test_noqa_suppresses_exactly_one_finding(self):
        findings = lint(
            """
            import time
            a = time.time()  # rfdump: noqa[RFD101]
            b = time.time()
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD101"]
        assert findings[0].line == 4

    def test_bare_noqa_suppresses_all_rules_on_line(self):
        assert lint(
            """
            import time
            a = time.time()  # rfdump: noqa
            """,
            path=PHY,
        ) == []

    def test_noqa_for_other_rule_does_not_suppress(self):
        findings = lint(
            """
            import time
            a = time.time()  # rfdump: noqa[RFD501]
            """,
            path=PHY,
        )
        assert rules_of(findings) == ["RFD101"]


class TestEngineBasics:
    def test_syntax_error_reported_as_finding(self):
        findings = lint("def broken(:\n    pass\n")
        assert rules_of(findings) == [SYNTAX_RULE]
        assert findings[0].severity == Severity.ERROR

    def test_select_restricts_rules(self):
        findings = lint(
            """
            import time
            def f(name: str = None):
                return time.time()
            """,
            path=PHY,
            select=["RFD501"],
        )
        assert rules_of(findings) == ["RFD501"]

    def test_ignore_drops_rules(self):
        findings = lint(
            """
            import time
            def f(name: str = None):
                return time.time()
            """,
            path=PHY,
            ignore=["RFD501"],
        )
        assert rules_of(findings) == ["RFD101"]
