"""Tests for the diagnostic analysis modules."""

import pytest

from repro import MicrowaveSource, RFDumpMonitor, Scenario, WifiPingSession
from repro.analysis.diagnostics import (
    diagnose_interference,
    protocol_airtime,
    station_traffic,
)


class TestStationTraffic:
    def test_accounts_stations(self, wifi_report):
        stations = station_traffic(wifi_report.packets)
        # two stations exchange data; both also receive ACKs
        data_senders = [s for s in stations.values() if s.data_packets > 0]
        assert len(data_senders) == 2
        for stat in data_senders:
            assert stat.bytes_sent > 0
            assert 1.0 in stat.rates_seen

    def test_acks_attributed(self, wifi_report):
        stations = station_traffic(wifi_report.packets)
        assert sum(s.ack_packets for s in stations.values()) == len(
            [p for p in wifi_report.packets if p.decoded.mac and p.decoded.mac.is_ack]
        )

    def test_empty(self):
        assert station_traffic([]) == {}

    def test_ignores_non_wifi(self, wifi_report):
        from repro.analysis.decoders import PacketRecord

        record = PacketRecord("bluetooth", 0, 100, True, "d")
        assert station_traffic([record]) == {}


class TestProtocolAirtime:
    def test_matches_busy_fraction(self, wifi_trace, wifi_report):
        airtime = protocol_airtime(wifi_report)
        busy = wifi_trace.ground_truth.busy_fraction()
        assert airtime["wifi"] == pytest.approx(busy, rel=0.2)

    def test_no_double_counting(self, wifi_report):
        # wifi peaks classified by both SIFS and DBPSK detectors count once
        airtime = protocol_airtime(wifi_report)
        assert airtime["wifi"] <= 1.0


class TestInterferenceDiagnosis:
    @pytest.fixture(scope="class")
    def kitchen_report(self):
        scenario = Scenario(duration=0.15, seed=77)
        scenario.add(MicrowaveSource(duration=0.15, snr_db=12.0))
        scenario.add(
            WifiPingSession(n_pings=4, snr_db=20.0, payload_size=200,
                            start=9e-3, interval=33.333e-3)
        )
        trace = scenario.render()
        monitor = RFDumpMonitor(
            protocols=("wifi", "microwave"), demodulate=False,
            noise_floor=trace.noise_power,
        )
        return trace, monitor.process(trace.buffer)

    def test_microwave_pressure_detected(self, kitchen_report):
        trace, report = kitchen_report
        diagnosis = diagnose_interference(report)
        # the magnetron runs at ~50% duty cycle
        assert diagnosis.interferer_airtime.get("microwave", 0) > 0.3
        assert diagnosis.capacity_pressure > 0.3
        assert diagnosis.wifi_airtime > 0.02

    def test_occupancy_bounds(self, kitchen_report):
        _, report = kitchen_report
        diagnosis = diagnose_interference(report)
        assert 0 <= diagnosis.unknown_airtime <= diagnosis.band_occupancy <= 1.0
