"""Tests for repro.analysis.decoders (stream decoders)."""

import numpy as np
import pytest

from repro.analysis.decoders import (
    BluetoothStreamDecoder,
    WifiStreamDecoder,
    ZigbeeStreamDecoder,
    _dedup_records,
    PacketRecord,
)
from repro.dsp.samples import SampleBuffer
from repro.emulator import Scenario, ZigbeePingSession
from repro.util.timebase import Timebase

FS = 8e6


class TestDedup:
    def _rec(self, start, ok=True):
        return PacketRecord("wifi", start, start + 100, ok, "d")

    def test_collapses_near_starts(self):
        records = [self._rec(100), self._rec(120), self._rec(5000)]
        out = _dedup_records(records, min_spacing=200)
        assert [r.start_sample for r in out] == [100, 5000]

    def test_prefers_ok_record(self):
        records = [self._rec(100, ok=False), self._rec(120, ok=True)]
        out = _dedup_records(records, min_spacing=200)
        assert out[0].ok

    def test_unsorted_input(self):
        records = [self._rec(5000), self._rec(100)]
        out = _dedup_records(records, min_spacing=200)
        assert [r.start_sample for r in out] == [100, 5000]


class TestWifiStream:
    def test_finds_all_packets(self, wifi_trace):
        decoder = WifiStreamDecoder(FS)
        records = decoder.scan(wifi_trace.buffer)
        truth = wifi_trace.ground_truth.observable("wifi")
        assert len(records) == len(truth)

    def test_positions_match_truth(self, wifi_trace):
        decoder = WifiStreamDecoder(FS)
        records = sorted(decoder.scan(wifi_trace.buffer),
                         key=lambda r: r.start_sample)
        truth = sorted(wifi_trace.ground_truth.observable("wifi"),
                       key=lambda t: t.start_time)
        for rec, tx in zip(records, truth):
            assert abs(rec.start_sample / FS - tx.start_time) < 100e-6

    def test_payload_decodes(self, wifi_trace):
        decoder = WifiStreamDecoder(FS)
        records = decoder.scan(wifi_trace.buffer)
        data = [r for r in records if r.decoded.mac and r.decoded.mac.is_data]
        assert data
        assert all(r.info["fcs_ok"] for r in data)

    def test_empty_buffer(self):
        buf = SampleBuffer(np.zeros(1000, dtype=np.complex64), Timebase(FS))
        assert WifiStreamDecoder(FS).scan(buf) == []

    def test_noise_only(self, rng):
        noise = (rng.normal(size=100000) + 1j * rng.normal(size=100000))
        buf = SampleBuffer(noise.astype(np.complex64), Timebase(FS))
        assert WifiStreamDecoder(FS).scan(buf) == []

    def test_subrange_scan(self, wifi_trace):
        truth = wifi_trace.ground_truth.observable("wifi")[0]
        lo = int(truth.start_time * FS) - 400
        hi = int(truth.end_time * FS) + 400
        sub = wifi_trace.buffer.slice(lo, hi)
        records = WifiStreamDecoder(FS).scan(sub)
        assert len(records) == 1
        assert abs(records[0].start_sample - lo - 400) < 200


class TestBluetoothStream:
    def test_finds_observable_packets(self, bluetooth_trace):
        decoder = BluetoothStreamDecoder(FS, bluetooth_trace.center_freq)
        records = decoder.scan(bluetooth_trace.buffer)
        truth = bluetooth_trace.ground_truth.observable("bluetooth")
        found_channels = {r.channel for r in records}
        truth_channels = {t.channel for t in truth}
        assert len(records) >= len(truth) - 1
        assert found_channels <= truth_channels

    def test_payload_size_identifies_sequence(self, bluetooth_trace):
        # the paper's ground-truth trick: size encodes the sequence number
        decoder = BluetoothStreamDecoder(FS, bluetooth_trace.center_freq)
        records = decoder.scan(bluetooth_trace.buffer)
        truth = {
            (round(t.start_time * FS), t.meta["size"])
            for t in bluetooth_trace.ground_truth.observable("bluetooth")
        }
        for rec in records:
            sizes = [s for (start, s) in truth if abs(start - rec.start_sample) < 400]
            assert sizes and sizes[0] == rec.payload_size

    def test_channel_hint_restricts_scan(self, bluetooth_trace):
        decoder = BluetoothStreamDecoder(FS, bluetooth_trace.center_freq)
        truth = bluetooth_trace.ground_truth.observable("bluetooth")[0]
        lo = int(truth.start_time * FS) - 800
        hi = lo + int(3e-3 * FS) + 1600
        sub = bluetooth_trace.buffer.slice(lo, hi)
        with_hint = decoder.scan(sub, channel_hint=truth.channel)
        assert len(with_hint) == 1
        wrong_hint = decoder.scan(
            sub, channel_hint=(truth.channel - 2) if truth.channel >= 38 else truth.channel + 2
        )
        assert wrong_hint == []

    def test_in_band_channel_count(self):
        decoder = BluetoothStreamDecoder(FS, 2.4415e9)
        assert len(decoder.channels) == 8


class TestZigbeeStream:
    def test_finds_frames(self):
        scenario = Scenario(duration=0.05, seed=12)
        scenario.add(ZigbeePingSession(n_packets=3, snr_db=20.0))
        trace = scenario.render()
        records = ZigbeeStreamDecoder(FS).scan(trace.buffer)
        truth = trace.ground_truth.observable("zigbee")
        assert len(records) == len(truth)

    def test_noise_only(self, rng):
        noise = (rng.normal(size=100000) + 1j * rng.normal(size=100000))
        buf = SampleBuffer(noise.astype(np.complex64), Timebase(FS))
        assert ZigbeeStreamDecoder(FS).scan(buf) == []
