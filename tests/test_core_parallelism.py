"""Tests for the parallelism estimate (Section 2.2 quantified)."""

import pytest

from repro import RFDumpMonitor
from repro.core.accounting import StageClock
from repro.core.parallelism import (
    ParallelismEstimate,
    estimate_parallel_speedup,
    lpt_makespan,
)
from repro.core.pipeline import MonitorReport


class TestLpt:
    def test_unbounded_is_max(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 0) == 3.0

    def test_single_worker_is_sum(self):
        assert lpt_makespan([3.0, 1.0, 2.0], 1) == 6.0

    def test_two_workers_balanced(self):
        assert lpt_makespan([3.0, 3.0, 2.0, 2.0], 2) == 5.0

    def test_more_workers_than_jobs(self):
        assert lpt_makespan([4.0, 1.0], 5) == 4.0

    def test_empty(self):
        assert lpt_makespan([], 4) == 0.0

    def test_matches_naive_reference(self):
        """The heap schedule is the same LPT greedy, just O(n log k)."""
        import random

        def naive(durations, workers):
            loads = [0.0] * workers
            for duration in sorted(durations, reverse=True):
                loads[loads.index(min(loads))] += duration
            return max(loads)

        rng = random.Random(42)
        for _ in range(50):
            durations = [rng.random() for _ in range(rng.randint(2, 60))]
            workers = rng.randint(1, len(durations) - 1) if len(durations) > 1 else 1
            assert lpt_makespan(durations, workers) == pytest.approx(
                naive(durations, workers)
            )

    def test_thousands_of_ranges_stay_cheap(self):
        import time

        durations = [((i * 2654435761) % 997) / 997 + 1e-3 for i in range(20000)]
        start = time.perf_counter()
        makespan = lpt_makespan(durations, 8)
        elapsed = time.perf_counter() - start
        # LPT bounds: never below the perfectly balanced load, never more
        # than one job above it
        assert makespan >= sum(durations) / 8
        assert makespan <= sum(durations) / 8 + max(durations)
        assert elapsed < 1.0  # the O(n*k) list scan took far longer


class TestEstimate:
    def _report(self, detection=1.0, demod=None):
        demod = demod or {}
        clock = StageClock(
            seconds={"peak_detection": detection,
                     "demodulation": sum(demod.values())}
        )
        return MonitorReport(
            total_samples=0, duration=1.0, peaks=None, classifications=[],
            ranges={}, packets=[], clock=clock,
            demod_seconds_by_protocol=demod,
        )

    def test_speedup_with_two_protocols(self):
        report = self._report(detection=1.0, demod={"wifi": 2.0, "bluetooth": 2.0})
        est = estimate_parallel_speedup(report)
        assert est.serial_seconds == pytest.approx(5.0)
        assert est.parallel_seconds == pytest.approx(3.0)
        assert est.speedup == pytest.approx(5.0 / 3.0)

    def test_workers_bound(self):
        report = self._report(
            detection=1.0, demod={"a": 2.0, "b": 2.0, "c": 2.0, "d": 2.0}
        )
        est1 = estimate_parallel_speedup(report, workers=1)
        est2 = estimate_parallel_speedup(report, workers=2)
        est4 = estimate_parallel_speedup(report, workers=4)
        assert est1.speedup == pytest.approx(1.0)
        assert est2.speedup < est4.speedup
        assert est4.parallel_seconds == pytest.approx(3.0)

    def test_amdahl_limit(self):
        report = self._report(detection=1.0, demod={"wifi": 9.0})
        est = estimate_parallel_speedup(report)
        assert est.amdahl_limit == pytest.approx(10.0)
        assert est.speedup <= est.amdahl_limit

    def test_no_demodulation(self):
        report = self._report(detection=0.5)
        est = estimate_parallel_speedup(report)
        assert est.speedup == pytest.approx(1.0)

    def test_range_granularity_splits_work(self, mixed_trace):
        report = RFDumpMonitor().process(mixed_trace.buffer)
        by_block = estimate_parallel_speedup(report, workers=8)
        by_range = estimate_parallel_speedup(
            report, workers=8, granularity="range"
        )
        assert by_range.speedup >= by_block.speedup
        # apportioning preserves the total demodulation time
        assert sum(by_range.demod_by_protocol.values()) == pytest.approx(
            sum(report.demod_seconds_by_protocol.values())
        )

    def test_rejects_unknown_granularity(self):
        report = self._report(detection=1.0, demod={"wifi": 1.0})
        with pytest.raises(ValueError):
            estimate_parallel_speedup(report, granularity="packet")

    def test_from_real_run(self, mixed_trace):
        report = RFDumpMonitor().process(mixed_trace.buffer)
        est = estimate_parallel_speedup(report)
        assert set(est.demod_by_protocol) <= {"wifi", "bluetooth"}
        assert 1.0 <= est.speedup <= est.amdahl_limit + 1e-9
        # the serial accounting is consistent with the stage clock
        assert est.serial_seconds == pytest.approx(
            report.clock.total_seconds()
        )
