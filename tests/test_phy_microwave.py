"""Tests for repro.phy.microwave."""

import numpy as np
import pytest

from repro.phy.microwave import MicrowaveEmitter


class TestBurstIntervals:
    def test_count_at_60hz(self):
        mw = MicrowaveEmitter(ac_hz=60.0)
        bursts = mw.burst_intervals(0.1)
        assert len(bursts) == 6

    def test_duty_cycle(self):
        mw = MicrowaveEmitter(ac_hz=60.0, duty_cycle=0.5)
        bursts = mw.burst_intervals(1.0)
        on_time = sum(t1 - t0 for t0, t1 in bursts)
        assert on_time == pytest.approx(0.5, rel=0.02)

    def test_spacing_is_ac_period(self):
        mw = MicrowaveEmitter(ac_hz=60.0)
        bursts = mw.burst_intervals(0.2)
        gaps = [b[0] - a[0] for a, b in zip(bursts, bursts[1:])]
        assert np.allclose(gaps, 1 / 60.0)

    def test_50hz(self):
        mw = MicrowaveEmitter(ac_hz=50.0)
        bursts = mw.burst_intervals(0.1)
        assert len(bursts) == 5

    def test_truncated_final_burst(self):
        mw = MicrowaveEmitter(ac_hz=60.0)
        bursts = mw.burst_intervals(0.02)
        assert bursts[-1][1] <= 0.02

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            MicrowaveEmitter(ac_hz=0.0)
        with pytest.raises(ValueError):
            MicrowaveEmitter(duty_cycle=1.5)


class TestRender:
    def test_length(self):
        wave = MicrowaveEmitter().render(0.01, 8e6)
        assert wave.size == 80000

    def test_constant_envelope_in_burst(self):
        mw = MicrowaveEmitter()
        wave = mw.render(0.02, 8e6, amplitude=2.0)
        t0, t1 = mw.burst_intervals(0.02)[0]
        seg = wave[int(t0 * 8e6) + 10 : int(t1 * 8e6) - 10]
        assert np.allclose(np.abs(seg), 2.0, atol=1e-3)

    def test_silence_between_bursts(self):
        mw = MicrowaveEmitter()
        wave = mw.render(0.0333, 8e6)
        bursts = mw.burst_intervals(0.0333)
        gap_start = int(bursts[0][1] * 8e6) + 10
        gap_end = int((bursts[0][0] + mw.period) * 8e6) - 10
        assert np.allclose(wave[gap_start:gap_end], 0.0)

    def test_frequency_sweeps(self):
        mw = MicrowaveEmitter(sweep_low_hz=-2e6, sweep_high_hz=2e6)
        wave = mw.render(0.0083, 8e6)  # one burst
        d1 = np.angle(wave[1:] * np.conj(wave[:-1]))
        active = np.abs(wave[:-1]) > 0.5
        freqs = d1[active] * 8e6 / (2 * np.pi)
        assert freqs[100] < -1.5e6
        assert freqs[-100] > 1.5e6
