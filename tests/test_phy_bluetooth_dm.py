"""Tests for Bluetooth DM packets (rate-2/3 FEC payloads)."""

import numpy as np
import pytest

from repro.phy.bluetooth import (
    BluetoothDemodulator,
    BluetoothModulator,
    TYPE_DH1,
    TYPE_DH5,
    TYPE_DM1,
    TYPE_DM3,
    TYPE_DM5,
)


@pytest.fixture(scope="module")
def modem():
    return BluetoothModulator(8e6), BluetoothDemodulator(8e6)


def _embed(wave, lead=400, tail=200, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    rx[lead : lead + wave.size] += wave
    return rx


class TestDmPackets:
    @pytest.mark.parametrize(
        "ptype,size", [(TYPE_DM1, 17), (TYPE_DM3, 120), (TYPE_DM5, 224)]
    )
    def test_round_trip(self, modem, ptype, size):
        mod, dem = modem
        data = bytes((i * 11) & 0xFF for i in range(size))
        rx = _embed(mod.modulate(ptype, data, clock=13, seqn=1), seed=size)
        packet = dem.demodulate(rx)
        assert packet.ptype == ptype
        assert packet.payload == data
        assert packet.crc_ok
        assert packet.slots == {TYPE_DM1: 1, TYPE_DM3: 3, TYPE_DM5: 5}[ptype]

    def test_fec_overhead_in_airtime(self, modem):
        mod, _ = modem
        # same payload: DM costs 1.5x the payload bits of DH
        dh = mod.airtime(TYPE_DH1, 17)
        dm = mod.airtime(TYPE_DM1, 17)
        assert dm > dh
        payload_bits = 16 + 17 * 8 + 16
        expected = (72 + 54 + 15 * (-(-payload_bits // 10))) / 1e6
        assert dm == pytest.approx(expected)

    def test_rejects_oversized(self, modem):
        mod, _ = modem
        with pytest.raises(ValueError):
            mod.packet_bits(TYPE_DM1, bytes(18), clock=0)

    def test_corrects_scattered_bit_errors(self, modem):
        """The whole point of DM: one flipped bit per codeword heals."""
        mod, dem = modem
        data = bytes(range(100))
        bits = mod.packet_bits(TYPE_DM5, data, clock=5)
        corrupted = bits.copy()
        payload_start = 72 + 54
        # flip one bit in every third 15-bit codeword of the payload
        for cw in range(0, (corrupted.size - payload_start) // 15, 3):
            corrupted[payload_start + cw * 15 + 7] ^= 1
        wave = dem.modem.modulate(corrupted)
        packet = dem.demodulate(_embed(wave, seed=3))
        assert packet.payload == data

    def test_dh_unprotected_fails_same_errors(self, modem):
        """Contrast: the same error pattern kills an unprotected DH5."""
        from repro.errors import DecodeError

        mod, dem = modem
        data = bytes(range(100))
        bits = mod.packet_bits(TYPE_DH5, data, clock=5)
        corrupted = bits.copy()
        payload_start = 72 + 54
        for pos in range(0, corrupted.size - payload_start - 20, 45):
            corrupted[payload_start + pos + 7] ^= 1
        wave = dem.modem.modulate(corrupted)
        with pytest.raises(DecodeError):
            dem.demodulate(_embed(wave, seed=4))

    def test_dm_more_robust_than_dh_at_low_snr(self, modem):
        """DM's FEC buys decode margin at marginal SNR."""
        mod, dem = modem
        data = bytes(range(17))
        dm_ok = dh_ok = 0
        for seed in range(8):
            noise = 0.42  # marginal: occasional bit errors
            dm_rx = _embed(mod.modulate(TYPE_DM1, data, clock=seed),
                           noise=noise, seed=seed)
            dh_rx = _embed(mod.modulate(TYPE_DH1, data, clock=seed),
                           noise=noise, seed=seed + 100)
            dm_ok += dem.try_demodulate(dm_rx) is not None
            dh_ok += dem.try_demodulate(dh_rx) is not None
        assert dm_ok >= dh_ok
