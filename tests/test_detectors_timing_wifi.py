"""Tests for the 802.11 SIFS / DIFS timing detectors.

Timing detectors consume only the peak history, so these tests build
synthetic histories directly — no samples involved.
"""

import numpy as np
import pytest

from repro.constants import WIFI_DIFS, WIFI_SIFS, WIFI_SLOT_TIME
from repro.core.detectors import WifiDifsTimingDetector, WifiSifsTimingDetector
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult

FS = 8e6


def _detection(gaps_us, first_start=1000, lengths=4000):
    """History of peaks separated by the given gaps (microseconds)."""
    history = PeakHistory(FS)
    start = first_start
    if np.isscalar(lengths):
        lengths = [lengths] * (len(gaps_us) + 1)
    for i, length in enumerate(lengths):
        history.append(start, start + length, 1.0, 1.0)
        if i < len(gaps_us):
            start = start + length + int(gaps_us[i] * 1e-6 * FS)
    return PeakDetectionResult(
        history=history, chunks=[], noise_floor=1.0, threshold=2.5,
        total_samples=start + lengths[-1] + 1000,
    )


class TestSifs:
    def test_detects_sifs_pair(self):
        result = _detection([10.0])
        out = WifiSifsTimingDetector().classify(result, None)
        assert {c.peak.index for c in out} == {0, 1}
        assert all(c.protocol == "wifi" for c in out)

    def test_tolerance_window(self):
        for gap, expected in [(8.0, 2), (12.9, 2), (14.0, 0), (5.0, 0)]:
            out = WifiSifsTimingDetector().classify(_detection([gap]), None)
            assert len(out) == expected, gap

    def test_confidence_higher_for_exact_gap(self):
        exact = WifiSifsTimingDetector().classify(_detection([10.0]), None)
        off = WifiSifsTimingDetector().classify(_detection([12.0]), None)
        assert exact[0].confidence > off[0].confidence

    def test_chain_of_exchanges(self):
        # data-SIFS-ack ... data-SIFS-ack: all four peaks classified
        out = WifiSifsTimingDetector().classify(
            _detection([10.0, 300.0, 10.0]), None
        )
        assert {c.peak.index for c in out} == {0, 1, 2, 3}

    def test_no_peaks(self):
        out = WifiSifsTimingDetector().classify(_detection([]), None)
        assert out == []

    def test_dedup_single_classification_per_peak(self):
        out = WifiSifsTimingDetector().classify(_detection([10.0, 10.0]), None)
        indices = [c.peak.index for c in out]
        assert len(indices) == len(set(indices))


class TestDifs:
    def test_detects_difs_only(self):
        out = WifiDifsTimingDetector().classify(_detection([50.0]), None)
        assert {c.peak.index for c in out} == {0, 1}
        assert out[0].info["k"] == 0

    def test_detects_difs_plus_slots(self):
        gap_us = (WIFI_DIFS + 7 * WIFI_SLOT_TIME) * 1e6
        out = WifiDifsTimingDetector().classify(_detection([gap_us]), None)
        assert len(out) == 2
        assert out[0].info["k"] == 7

    def test_cw_bound_respected(self):
        gap_us = (WIFI_DIFS + 65 * WIFI_SLOT_TIME) * 1e6
        out = WifiDifsTimingDetector().classify(_detection([gap_us]), None)
        assert out == []

    def test_sifs_not_matched_by_difs(self):
        out = WifiDifsTimingDetector().classify(_detection([10.0]), None)
        assert out == []

    def test_between_slots_rejected(self):
        gap_us = (WIFI_DIFS + 0.5 * WIFI_SLOT_TIME) * 1e6
        out = WifiDifsTimingDetector().classify(_detection([gap_us]), None)
        assert out == []

    def test_flood_detects_all(self):
        rng = np.random.default_rng(0)
        gaps = [
            (WIFI_DIFS + int(k) * WIFI_SLOT_TIME) * 1e6
            for k in rng.integers(0, 64, size=20)
        ]
        out = WifiDifsTimingDetector().classify(_detection(gaps), None)
        assert {c.peak.index for c in out} == set(range(21))
