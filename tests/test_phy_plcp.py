"""Tests for repro.phy.plcp."""

import numpy as np
import pytest

from repro.errors import ChecksumError, DecodeError
from repro.phy import plcp
from repro.util.bits import Scrambler80211, descramble_stream


class TestHeader:
    def test_round_trip_all_rates(self):
        for rate in (1.0, 2.0, 5.5, 11.0):
            bits = plcp.header_bits(rate, 100)
            header = plcp.parse_header(bits)
            assert header.rate_mbps == rate
            assert header.mpdu_bytes == 100

    def test_length_us_for_1mbps(self):
        bits = plcp.header_bits(1.0, 125)
        assert plcp.parse_header(bits).length_us == 1000

    def test_crc_detects_corruption(self):
        bits = plcp.header_bits(1.0, 100)
        bits[5] ^= 1
        with pytest.raises(ChecksumError):
            plcp.parse_header(bits)

    def test_rejects_wrong_size(self):
        with pytest.raises(DecodeError):
            plcp.parse_header(np.zeros(47, dtype=np.uint8))

    def test_rejects_unknown_rate(self):
        with pytest.raises(ValueError):
            plcp.header_bits(3.0, 100)

    def test_service_field(self):
        bits = plcp.header_bits(2.0, 64, service=0x42)
        assert plcp.parse_header(bits).service == 0x42


class TestFrameBits:
    def test_head_length(self):
        head, payload = plcp.build_frame_bits(b"\x00" * 10, 1.0)
        assert head.size == 128 + 16 + 48
        assert payload.size == 80

    def test_payload_scrambled(self):
        head, payload = plcp.build_frame_bits(b"\x00" * 10, 1.0)
        assert payload.any()  # zeros scramble to non-zeros

    def test_descramble_recovers_sync_ones(self):
        head, _ = plcp.build_frame_bits(b"", 1.0)
        plain = descramble_stream(head)
        assert plain[7:128].all()


class TestFindSfd:
    def _stream(self, lead_garbage=0):
        head, _ = plcp.build_frame_bits(b"\x11\x22", 1.0)
        plain = descramble_stream(head)
        if lead_garbage:
            rng = np.random.default_rng(0)
            noise = rng.integers(0, 2, lead_garbage).astype(np.uint8)
            # keep noise from ending in 8 ones followed by the SFD by chance
            noise[-1] = 0
            plain = np.concatenate([noise, plain[7:]])
        return plain

    def test_finds_sfd(self):
        plain = self._stream()
        at = plcp.find_sfd(plain)
        assert at == 144

    def test_finds_with_leading_garbage(self):
        plain = self._stream(lead_garbage=50)
        at = plcp.find_sfd(plain)
        assert at > 0
        header = plcp.parse_header(plain[at : at + 48])
        assert header.mpdu_bytes == 2

    def test_absent_sfd(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 500).astype(np.uint8)
        bits[:16] = 0  # ensure no accidental leading match context
        assert plcp.find_sfd(np.zeros(300, dtype=np.uint8)) == -1

    def test_search_limit(self):
        plain = self._stream()
        assert plcp.find_sfd(plain, search_limit=100) == -1

    def test_too_short(self):
        assert plcp.find_sfd(np.ones(10, dtype=np.uint8)) == -1
