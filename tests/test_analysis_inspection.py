"""Tests for deep packet inspection (ping exchange reconstruction)."""

import pytest

from repro.analysis.inspection import extract_ping_exchanges, ping_report


class TestPingExchanges:
    def test_all_exchanges_reconstructed(self, wifi_report, wifi_trace):
        exchanges = extract_ping_exchanges(
            wifi_report.packets, wifi_trace.sample_rate
        )
        # the fixture runs 3 pings
        assert len(exchanges) == 3
        assert all(e.complete for e in exchanges.values())

    def test_acks_attributed(self, wifi_report, wifi_trace):
        exchanges = extract_ping_exchanges(
            wifi_report.packets, wifi_trace.sample_rate
        )
        assert all(e.request_acked and e.reply_acked for e in exchanges.values())

    def test_rtt_values_sane(self, wifi_report, wifi_trace):
        exchanges = extract_ping_exchanges(
            wifi_report.packets, wifi_trace.sample_rate
        )
        for e in exchanges.values():
            # request airtime + SIFS + ACK + DIFS + backoff: 5-8 ms here
            assert 4e-3 < e.rtt < 10e-3

    def test_rtt_matches_ground_truth(self, wifi_report, wifi_trace):
        exchanges = extract_ping_exchanges(
            wifi_report.packets, wifi_trace.sample_rate
        )
        truth = wifi_trace.ground_truth.by_protocol("wifi")
        for seq, ex in exchanges.items():
            req = next(t for t in truth
                       if t.meta.get("seq") == seq
                       and t.meta.get("direction") == "request")
            rep = next(t for t in truth
                       if t.meta.get("seq") == seq
                       and t.meta.get("direction") == "reply")
            assert ex.rtt == pytest.approx(rep.start_time - req.start_time,
                                           abs=50e-6)

    def test_missing_reply_incomplete(self, wifi_report, wifi_trace):
        # drop reply packets from the record stream
        filtered = [
            p for p in wifi_report.packets
            if not (p.decoded.mac and p.decoded.mac.is_data
                    and p.decoded.mac.body.startswith(b"ICMPEREP"))
        ]
        report = ping_report(filtered, wifi_trace.sample_rate)
        assert report.sent == 3
        assert report.completed == 0
        assert report.loss_rate == 1.0

    def test_report_summary(self, wifi_report, wifi_trace):
        report = ping_report(wifi_report.packets, wifi_trace.sample_rate)
        text = report.summary()
        assert "3 requests observed" in text
        assert "rtt min/avg/max" in text

    def test_empty(self):
        report = ping_report([], 8e6)
        assert report.sent == 0
        assert report.loss_rate == 0.0
