"""Tests for the OFDM cyclic-prefix detector and its pipeline integration."""

import numpy as np
import pytest

from repro import RFDumpMonitor, Scenario, packet_miss_rate
from repro.core.detectors import OfdmCyclicPrefixDetector
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult
from repro.dsp.samples import SampleBuffer
from repro.emulator.traffic import OfdmBurstSource
from repro.phy.ofdm import OfdmModem
from repro.phy.wifi import WifiModulator
from repro.phy.wifi_mac import build_data_frame
from repro.util.timebase import Timebase

FS = 8e6


def _buffer_with(wave, lead=400, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + 400
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n))
    rx[lead : lead + wave.size] += wave
    buf = SampleBuffer(rx.astype(np.complex64), Timebase(FS))
    history = PeakHistory(FS)
    history.append(lead, lead + wave.size, 1.0, 1.0)
    detection = PeakDetectionResult(
        history=history, chunks=[], noise_floor=noise**2 * 2,
        threshold=noise**2 * 5, total_samples=n,
    )
    return buf, detection


class TestCpDetector:
    def test_classifies_ofdm(self):
        wave = OfdmModem(FS).modulate(bytes(200))
        buf, det = _buffer_with(wave)
        out = OfdmCyclicPrefixDetector().classify(det, buf)
        assert len(out) == 1
        assert out[0].protocol == "ofdm"
        assert out[0].info["cp_metric"] > 0.45

    def test_rejects_dsss(self):
        wave = WifiModulator(FS).modulate(build_data_frame(1, 2, b"d" * 60), 1.0)
        buf, det = _buffer_with(wave)
        assert OfdmCyclicPrefixDetector().classify(det, buf) == []

    def test_rejects_noise_peak(self, rng):
        wave = 0.5 * (rng.normal(size=4000) + 1j * rng.normal(size=4000))
        buf, det = _buffer_with(wave.astype(np.complex64))
        assert OfdmCyclicPrefixDetector().classify(det, buf) == []

    def test_requires_buffer(self):
        wave = OfdmModem(FS).modulate(bytes(50))
        _, det = _buffer_with(wave)
        with pytest.raises(ValueError):
            OfdmCyclicPrefixDetector().classify(det, None)

    def test_short_peak_skipped(self):
        wave = OfdmModem(FS).modulate(b"")[:600]  # 75 us < min_duration
        buf, det = _buffer_with(wave)
        assert OfdmCyclicPrefixDetector().classify(det, buf) == []


class TestPipeline:
    @pytest.fixture(scope="class")
    def ofdm_trace(self):
        scenario = Scenario(duration=0.08, seed=56)
        scenario.add(OfdmBurstSource(n_packets=6, snr_db=20.0, interval=11e-3))
        return scenario.render()

    def test_end_to_end(self, ofdm_trace):
        monitor = RFDumpMonitor(protocols=("ofdm",), kinds=("phase",))
        report = monitor.process(ofdm_trace.buffer)
        truth = ofdm_trace.ground_truth
        assert packet_miss_rate(
            truth, report.classifications_for("ofdm"), "ofdm"
        ) == 0.0
        assert len(report.packets_for("ofdm")) == len(truth.observable("ofdm"))
        for packet in report.packets_for("ofdm"):
            assert packet.decoded.crc_ok

    def test_coexists_with_dsss(self, ofdm_trace):
        from repro import WifiPingSession

        scenario = Scenario(duration=0.1, seed=57)
        scenario.add(OfdmBurstSource(n_packets=4, snr_db=20.0, interval=23e-3))
        scenario.add(WifiPingSession(n_pings=3, snr_db=20.0, interval=30e-3,
                                     start=6e-3, payload_size=200))
        trace = scenario.render()
        monitor = RFDumpMonitor(protocols=("wifi", "ofdm"), kinds=("phase",),
                                demodulate=False)
        report = monitor.process(trace.buffer)
        truth = trace.ground_truth
        assert packet_miss_rate(
            truth, report.classifications_for("ofdm"), "ofdm"
        ) <= 0.25
        assert packet_miss_rate(
            truth, report.classifications_for("wifi"), "wifi"
        ) <= 0.25
        # no cross-classification: OFDM peaks are not tagged DSSS or v.v.
        ofdm_peaks = {c.peak.index for c in report.classifications_for("ofdm")}
        wifi_peaks = {c.peak.index for c in report.classifications_for("wifi")}
        assert not (ofdm_peaks & wifi_peaks)
