"""Tests for confidence-gated dispatch, unknown peaks, frequency kind."""

import pytest

from repro import MicrowaveSource, RFDumpMonitor, Scenario, WifiPingSession
from repro.core.detectors import BluetoothFrequencyDetector
from repro.core.detectors.base import Classification
from repro.core.dispatcher import Dispatcher
from repro.core.metadata import Peak
from repro.core.pipeline import default_detectors


def _cls(confidence, start=250, end=1150):
    return Classification(
        Peak(start, end, 1.0, 1.0, index=0), "wifi", "t", confidence
    )


class TestConfidenceGate:
    def test_low_confidence_dropped(self):
        dispatcher = Dispatcher(200, min_confidence=0.5)
        assert dispatcher.dispatch([_cls(0.3)], 10_000) == {}

    def test_high_confidence_kept(self):
        dispatcher = Dispatcher(200, min_confidence=0.5)
        assert "wifi" in dispatcher.dispatch([_cls(0.8)], 10_000)

    def test_default_keeps_everything(self):
        assert "wifi" in Dispatcher(200).dispatch([_cls(0.01)], 10_000)

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            Dispatcher(200, min_confidence=1.5)


class TestFrequencyKind:
    def test_default_detectors_include_frequency(self):
        dets = default_detectors(("bluetooth",), ("frequency",))
        assert {type(d) for d in dets} == {BluetoothFrequencyDetector}

    def test_monitor_runs_with_frequency_kind(self, bluetooth_trace):
        monitor = RFDumpMonitor(
            protocols=("bluetooth",), kinds=("frequency",), demodulate=False,
            center_freq=bluetooth_trace.center_freq,
        )
        report = monitor.process(bluetooth_trace.buffer)
        found = report.classifications_for("bluetooth")
        truth = bluetooth_trace.ground_truth.observable("bluetooth")
        assert len(found) >= len(truth) - 2
        assert all(c.detector == "BluetoothFrequencyDetector" for c in found)
        assert "frequency_detection" in report.clock.seconds


class TestUnknownPeaks:
    def test_microwave_unknown_without_its_detector(self):
        scenario = Scenario(duration=0.08, seed=61)
        scenario.add(MicrowaveSource(duration=0.08, snr_db=12.0))
        scenario.add(
            WifiPingSession(n_pings=2, snr_db=20.0, payload_size=200,
                            start=9e-3, interval=33.333e-3)
        )
        trace = scenario.render()
        # monitor knows wifi only: the magnetron bursts surface as unknowns
        monitor = RFDumpMonitor(protocols=("wifi",), demodulate=False)
        report = monitor.process(trace.buffer)
        unknown = report.unclassified_peaks()
        assert unknown
        fs = trace.sample_rate
        long_unknowns = [p for p in unknown if p.length / fs > 3e-3]
        assert long_unknowns  # the 8.3 ms bursts

    def test_fully_classified_trace_has_few_unknowns(self, wifi_trace):
        report = RFDumpMonitor(protocols=("wifi",), demodulate=False).process(
            wifi_trace.buffer
        )
        assert len(report.unclassified_peaks()) <= 1

    def test_no_peaks_case(self):
        from repro.core.pipeline import MonitorReport
        from repro.core.accounting import StageClock

        report = MonitorReport(
            total_samples=0, duration=1.0, peaks=None, classifications=[],
            ranges={}, packets=[], clock=StageClock(),
        )
        assert report.unclassified_peaks() == []
