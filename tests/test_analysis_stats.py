"""Tests for repro.analysis.stats."""

import numpy as np
import pytest

from repro.analysis.stats import (
    AccuracyReport,
    false_positive_sample_rate,
    match_detections,
    packet_miss_rate,
)
from repro.emulator.groundtruth import GroundTruth, Transmission
from repro.util.timebase import Timebase

FS = 8e6


def _truth(intervals, protocol="wifi", duration=1.0):
    txs = [
        Transmission(start_time=s, end_time=e, protocol=protocol,
                     source="n", kind="data")
        for s, e in intervals
    ]
    return GroundTruth(txs, Timebase(FS), duration)


def _detections(intervals):
    """Plain (start_sample, end_sample) tuples."""
    return [(int(s * FS), int(e * FS)) for s, e in intervals]


class TestMatching:
    def test_perfect_match(self):
        truth = _truth([(0.01, 0.02), (0.05, 0.06)])
        result = match_detections(truth, _detections([(0.01, 0.02), (0.05, 0.06)]))
        assert result.miss_rate == 0.0
        assert result.extra_detections == 0

    def test_missed_packet(self):
        truth = _truth([(0.01, 0.02), (0.05, 0.06)])
        result = match_detections(truth, _detections([(0.01, 0.02)]))
        assert result.miss_rate == 0.5
        assert len(result.missed) == 1

    def test_partial_overlap_counts(self):
        truth = _truth([(0.01, 0.02)])
        result = match_detections(truth, _detections([(0.014, 0.024)]))
        assert result.miss_rate == 0.0

    def test_tiny_overlap_does_not_count(self):
        truth = _truth([(0.01, 0.02)])
        result = match_detections(truth, _detections([(0.0195, 0.03)]))
        assert result.miss_rate == 1.0

    def test_extra_detection_counted(self):
        truth = _truth([(0.01, 0.02)])
        result = match_detections(
            truth, _detections([(0.01, 0.02), (0.5, 0.51)])
        )
        assert result.extra_detections == 1

    def test_protocol_filter(self):
        truth = GroundTruth(
            [
                Transmission(0.01, 0.02, "wifi", "n", "data"),
                Transmission(0.05, 0.06, "bluetooth", "n", "data"),
            ],
            Timebase(FS), 1.0,
        )
        assert packet_miss_rate(truth, _detections([(0.01, 0.02)]), "wifi") == 0.0
        assert packet_miss_rate(truth, _detections([(0.01, 0.02)]), "bluetooth") == 1.0

    def test_unobservable_not_scored(self):
        txs = [Transmission(0.01, 0.02, "bluetooth", "n", "data", observable=False)]
        truth = GroundTruth(txs, Timebase(FS), 1.0)
        assert packet_miss_rate(truth, []) == 0.0

    def test_accepts_packet_records(self):
        from repro.analysis.decoders import PacketRecord

        truth = _truth([(0.01, 0.02)])
        rec = PacketRecord("wifi", int(0.01 * FS), int(0.02 * FS), True, "d")
        assert packet_miss_rate(truth, [rec]) == 0.0

    def test_accepts_classifications(self):
        from repro.core.detectors.base import Classification
        from repro.core.metadata import Peak

        truth = _truth([(0.01, 0.02)])
        cls = Classification(
            Peak(int(0.01 * FS), int(0.02 * FS), 1.0, 1.0), "wifi", "t", 0.9
        )
        assert packet_miss_rate(truth, [cls]) == 0.0


class TestFalsePositive:
    def test_no_forwarding_zero(self):
        truth = _truth([(0.01, 0.02)], duration=0.1)
        assert false_positive_sample_rate(truth, [], 800000) == 0.0

    def test_useful_samples_not_false_positive(self):
        truth = _truth([(0.0, 0.05)], duration=0.1)
        fp = false_positive_sample_rate(truth, [(0, 400000)], 800000)
        assert fp == 0.0

    def test_useless_forwarding_counted(self):
        truth = _truth([], duration=0.1)
        fp = false_positive_sample_rate(truth, [(0, 80000)], 800000)
        assert fp == pytest.approx(0.1)

    def test_mixed(self):
        truth = _truth([(0.0, 0.05)], duration=0.1)
        # forward the transmission plus 40000 extra samples
        fp = false_positive_sample_rate(truth, [(0, 440000)], 800000)
        assert fp == pytest.approx(0.05)


class TestAccuracyReport:
    def test_evaluate(self):
        truth = _truth([(0.01, 0.02), (0.05, 0.06)], duration=0.1)
        report = AccuracyReport.evaluate(
            truth,
            {"wifi": _detections([(0.01, 0.02)])},
            {"wifi": [(0, 80000)]},
            800000,
        )
        assert report.miss_rate["wifi"] == 0.5
        assert report.found["wifi"] == 1
        assert report.total["wifi"] == 2
        assert report.false_positive_rate["wifi"] > 0
