"""Tests for RFDumpDaemon: ingest, fan-out, gaps, metrics, equivalence."""

import socket
import threading

import pytest

from repro import MonitorConfig
from repro.core import make_monitor
from repro.errors import ServiceProtocolError
from repro.service import RFDumpDaemon, replay_trace, subscribe_events
from repro.service import protocol
from repro.service.client import fetch_metrics, window_samples
from repro.service.hub import POLICY_DISCONNECT, POLICY_DROP_NEW, POLICY_DROP_OLD
from repro.trace import write_trace
from repro.trace.io import TraceReader

WINDOW_MS = 20.0


@pytest.fixture(scope="session")
def wifi_trace_file(wifi_trace, tmp_path_factory):
    path = tmp_path_factory.mktemp("service") / "wifi.iq"
    write_trace(path, wifi_trace)
    return path


@pytest.fixture(scope="session")
def daemon_config(wifi_trace):
    return MonitorConfig(
        sample_rate=wifi_trace.sample_rate,
        center_freq=wifi_trace.center_freq,
        protocols=("wifi",),
        on_error="degrade",
    )


def _direct_events(kind, config, trace_file):
    """The stream a CLI run produces: same monitor, same windows."""
    reader = TraceReader(
        trace_file,
        window_samples=window_samples(WINDOW_MS, config.sample_rate),
    )
    with make_monitor(kind, config.replace(obs=None)) as monitor:
        return [event.to_json() for event in monitor.events(reader)]


class TestDaemonLifecycle:
    def test_replay_then_late_subscribe(self, daemon_config, wifi_trace_file):
        with RFDumpDaemon(daemon_config) as daemon:
            done = replay_trace(
                daemon.address, wifi_trace_file, window_ms=WINDOW_MS)
            assert done["type"] == "done"
            assert done["events"] > 0
            assert done["stream_error"] is None
            # subscribing after the replay finished still yields the
            # complete stream: backlog replay is race-free by design
            events = list(subscribe_events(daemon.address, from_seq=0))
        assert len(events) == done["events"]
        assert [e.seq for e in events] == list(range(len(events)))

    def test_live_subscriber_attached_before_replay(
            self, daemon_config, wifi_trace_file):
        with RFDumpDaemon(daemon_config) as daemon:
            collected = []

            def consume():
                collected.extend(subscribe_events(daemon.address, from_seq=0))

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            done = replay_trace(
                daemon.address, wifi_trace_file, window_ms=WINDOW_MS)
            thread.join(timeout=30)
            assert not thread.is_alive()
        assert [e.seq for e in collected] == list(range(done["events"]))

    def test_subscriber_disconnect_mid_stream_keeps_daemon_alive(
            self, daemon_config, wifi_trace_file):
        with RFDumpDaemon(daemon_config) as daemon:
            flaky = subscribe_events(daemon.address, from_seq=0)
            survivor = []

            def consume():
                survivor.extend(subscribe_events(daemon.address, from_seq=0))

            thread = threading.Thread(target=consume, daemon=True)
            thread.start()
            done = replay_trace(
                daemon.address, wifi_trace_file, window_ms=WINDOW_MS)
            first = next(flaky)
            assert first.seq == 0
            flaky.close()  # drop the connection mid-stream
            thread.join(timeout=30)
            assert not thread.is_alive()
            assert [e.seq for e in survivor] == list(range(done["events"]))

    def test_second_ingest_after_finalize_rejected(
            self, daemon_config, wifi_trace_file):
        with RFDumpDaemon(daemon_config) as daemon:
            replay_trace(daemon.address, wifi_trace_file, window_ms=WINDOW_MS)
            with pytest.raises(ServiceProtocolError, match="finalized"):
                replay_trace(
                    daemon.address, wifi_trace_file, window_ms=WINDOW_MS)

    def test_sample_rate_mismatch_rejected(
            self, daemon_config, wifi_trace_file):
        config = daemon_config.replace(
            sample_rate=daemon_config.sample_rate * 2)
        with RFDumpDaemon(config) as daemon:
            with pytest.raises(ServiceProtocolError, match="sps"):
                replay_trace(
                    daemon.address, wifi_trace_file, window_ms=WINDOW_MS)

    def test_policy_mapping_reaches_hub(self, daemon_config):
        for on_error, policy in (("raise", POLICY_DISCONNECT),
                                 ("skip", POLICY_DROP_NEW),
                                 ("degrade", POLICY_DROP_OLD),
                                 (None, POLICY_DROP_OLD)):
            daemon = RFDumpDaemon(daemon_config.replace(on_error=on_error))
            assert daemon.hub.policy == policy


class TestDaemonCLIEquivalence:
    @pytest.mark.parametrize("kind,shards", [("streaming", 1), ("sharded", 2)])
    def test_subscriber_stream_equals_cli_stream(
            self, daemon_config, wifi_trace_file, kind, shards):
        config = daemon_config.replace(shards=shards)
        expected = _direct_events(kind, config, wifi_trace_file)
        assert expected, "fixture trace must decode to at least one event"
        with RFDumpDaemon(config, kind=kind) as daemon:
            replay_trace(daemon.address, wifi_trace_file, window_ms=WINDOW_MS)
            actual = [
                event.to_json()
                for event in subscribe_events(daemon.address, from_seq=0)
            ]
        assert actual == expected


class TestIngestGapDetection:
    def _ingest_raw(self, daemon, windows, *, frames=None):
        """Drive the ingest protocol by hand; returns the final frame."""
        with socket.create_connection(daemon.address, timeout=30) as conn:
            rw = conn.makefile("rwb")
            protocol.send_frame(rw, {
                "type": "hello", "role": "ingest",
                "v": protocol.PROTOCOL_VERSION,
            })
            header, _ = protocol.recv_frame(rw)
            assert header["type"] == "welcome"
            for seq, buffer in windows:
                head, payload = protocol.window_frame(buffer)
                head["seq"] = seq
                protocol.send_frame(rw, head, payload)
            protocol.send_frame(rw, {"type": "end"})
            final = protocol.recv_frame(rw)
            return final[0] if final else None

    def _windows(self, trace):
        from repro.faults.harness import split_windows
        return split_windows(
            trace.buffer,
            window_samples(WINDOW_MS, trace.sample_rate),
        )

    def test_skipped_window_is_recorded(self, daemon_config, wifi_trace):
        windows = self._windows(wifi_trace)
        assert len(windows) >= 3
        # drop the second window: both the client seq and the sample
        # position jump
        fed = [(0, windows[0])] + [
            (i, w) for i, w in enumerate(windows) if i >= 2
        ]
        with RFDumpDaemon(daemon_config) as daemon:
            final = self._ingest_raw(daemon, fed)
            assert final["type"] == "done"
            errors = list(daemon.errors)
        kinds = {(e.error, e.action) for e in errors}
        assert ("SequenceGap", "forwarded") in kinds
        assert ("StreamGap", "forwarded") in kinds
        assert all(e.stage == "service" for e in errors)

    def test_contiguous_stream_records_no_gaps(
            self, daemon_config, wifi_trace):
        windows = self._windows(wifi_trace)
        with RFDumpDaemon(daemon_config) as daemon:
            final = self._ingest_raw(
                daemon, list(enumerate(windows)))
            assert final["type"] == "done"
            assert final["errors"] == 0

    def test_raise_policy_rejects_gapped_stream(
            self, daemon_config, wifi_trace):
        windows = self._windows(wifi_trace)
        fed = [(0, windows[0]), (2, windows[2])]  # seq 1 missing
        config = daemon_config.replace(on_error="raise")
        with RFDumpDaemon(config) as daemon:
            final = self._ingest_raw(daemon, fed)
            assert final["type"] == "error"
            # both the seq and the sample-position discontinuity fire;
            # the reported message describes the gap either way
            assert "seq" in final["message"] or "sample" in final["message"]
            assert any(e.action == "rejected" for e in daemon.errors)


class TestMetricsEndpoint:
    def test_metrics_page_and_healthz(self, daemon_config, wifi_trace_file):
        with RFDumpDaemon(daemon_config, metrics_port=0) as daemon:
            done = replay_trace(
                daemon.address, wifi_trace_file, window_ms=WINDOW_MS)
            page = fetch_metrics(daemon.metrics_address)
            assert "# TYPE rfdumpd_events_published_total counter" in page
            assert (f"rfdumpd_events_published_total {done['events']}"
                    in page)
            assert "rfdumpd_windows_ingested_total" in page
            # the monitor's own pipeline metrics share the registry
            assert "rfdump_" in page
            import json as _json
            health = _json.loads(
                fetch_metrics(daemon.metrics_address, path="/healthz"))
            assert health["stream_done"] is True
            assert health["events"] == done["events"]
            with pytest.raises(ServiceProtocolError):
                fetch_metrics(daemon.metrics_address, path="/nope")
