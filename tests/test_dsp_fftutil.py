"""Tests for repro.dsp.fftutil."""

import numpy as np
import pytest

from repro.dsp.fftutil import band_occupancy, channelize_power, spectrogram


def _tone(freq, fs, n):
    return np.exp(2j * np.pi * freq * np.arange(n) / fs)


class TestSpectrogram:
    def test_shape(self):
        spec = spectrogram(np.ones(1024, dtype=complex), fft_size=256)
        assert spec.shape == (4, 256)

    def test_hop_overlap(self):
        spec = spectrogram(np.ones(1024, dtype=complex), fft_size=256, hop=128)
        assert spec.shape[0] == 7

    def test_tone_lands_in_right_bin(self):
        fs = 8e6
        x = _tone(1e6, fs, 2048)
        spec = spectrogram(x, fft_size=256)
        bin_freqs = np.fft.fftshift(np.fft.fftfreq(256, d=1 / fs))
        peak_bin = np.argmax(spec.mean(axis=0))
        assert abs(bin_freqs[peak_bin] - 1e6) < fs / 256

    def test_too_short_input(self):
        assert spectrogram(np.ones(10, dtype=complex), fft_size=256).shape[0] == 0

    def test_rejects_bad_sizes(self):
        with pytest.raises(ValueError):
            spectrogram(np.ones(100), fft_size=0)
        with pytest.raises(ValueError):
            spectrogram(np.ones(100), fft_size=16, hop=0)


class TestChannelize:
    def test_shape(self):
        out = channelize_power(np.ones(2048, dtype=complex), 8, fft_size=256)
        assert out.shape == (8, 8)

    def test_tone_occupies_single_channel(self):
        fs = 8e6
        # center of channel 6 of 8: offset = (6 + 0.5) * 1 MHz - 4 MHz = 2.5 MHz
        x = _tone(2.5e6, fs, 4096)
        out = channelize_power(x, 8, fft_size=256)
        dominant = np.argmax(out, axis=1)
        assert (dominant == 6).all()
        total = out.sum(axis=1)
        assert (out[:, 6] / total > 0.9).all()

    def test_wideband_spreads(self, rng):
        x = (rng.normal(size=4096) + 1j * rng.normal(size=4096))
        out = channelize_power(x, 8, fft_size=256)
        fractions = out.max(axis=1) / out.sum(axis=1)
        assert fractions.mean() < 0.5

    def test_rejects_mismatched_sizes(self):
        with pytest.raises(ValueError):
            channelize_power(np.ones(1024), 7, fft_size=256)
        with pytest.raises(ValueError):
            channelize_power(np.ones(1024), 0, fft_size=256)

    def test_short_segment_falls_back_to_smaller_fft(self):
        # regression: a segment shorter than fft_size silently produced
        # (0, nchannels) — a sub-256-sample burst vanished entirely; now
        # the largest valid multiple of nchannels is used instead
        fs = 8e6
        x = _tone(2.5e6, fs, 100)  # channel 6 of 8, under fft_size=256
        out = channelize_power(x, 8, fft_size=256)
        assert out.shape == (1, 8)  # one 96-point frame (100 // 8 * 8)
        assert int(np.argmax(out[0])) == 6

    def test_short_segment_fallback_matches_direct_small_fft(self):
        rng = np.random.default_rng(9)
        x = (rng.normal(size=100) + 1j * rng.normal(size=100))
        fallback = channelize_power(x, 8, fft_size=256)
        direct = channelize_power(x, 8, fft_size=96)
        np.testing.assert_allclose(fallback, direct)

    def test_short_segment_fallback_clamps_hop(self):
        x = np.ones(100, dtype=complex)
        out = channelize_power(x, 8, fft_size=256, hop=256)
        assert out.shape == (1, 8)

    def test_segment_shorter_than_nchannels_is_skipped(self):
        # fewer samples than sub-bands resolves nothing: empty result
        out = channelize_power(np.ones(5, dtype=complex), 8, fft_size=256)
        assert out.shape == (0, 8)

    def test_empty_segment(self):
        out = channelize_power(np.zeros(0, dtype=complex), 8, fft_size=256)
        assert out.shape == (0, 8)

    def test_fallback_and_skip_are_counted(self):
        from repro.dsp.fftutil import set_plan_cache_obs
        from repro.obs import Observability

        obs = Observability()
        set_plan_cache_obs(obs)
        try:
            channelize_power(np.ones(100, dtype=complex), 8, fft_size=256)
            channelize_power(np.ones(5, dtype=complex), 8, fft_size=256)
        finally:
            set_plan_cache_obs(None)
        assert obs.registry.value(
            "rfdump_channelize_fft_fallbacks_total") == 1
        assert obs.registry.value(
            "rfdump_channelize_skipped_total") == 1


class TestOccupancy:
    def test_threshold(self):
        power = np.array([[1.0, 5.0], [0.5, 0.1]])
        mask = band_occupancy(power, 1.0)
        assert mask.tolist() == [[False, True], [False, False]]
