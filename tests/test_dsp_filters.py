"""Tests for repro.dsp.filters (cross-validated against scipy)."""

import numpy as np
import pytest

from repro.dsp.filters import (
    filter_signal,
    fir_lowpass,
    gaussian_pulse,
    raised_cosine_edges,
)


class TestFirLowpass:
    def test_unit_dc_gain(self):
        taps = fir_lowpass(1e6, 8e6, 64)
        assert taps.sum() == pytest.approx(1.0)

    def test_passband_and_stopband(self):
        taps = fir_lowpass(1e6, 8e6, 129)
        freqs = np.fft.rfftfreq(4096, d=1 / 8e6)
        response = np.abs(np.fft.rfft(taps, 4096))
        passband = response[freqs < 0.5e6]
        stopband = response[freqs > 2.5e6]
        assert passband.min() > 0.9
        assert stopband.max() < 0.05

    def test_matches_scipy_firwin_shape(self):
        scipy_signal = pytest.importorskip("scipy.signal")
        ours = fir_lowpass(1e6, 8e6, 65)
        theirs = scipy_signal.firwin(65, 1e6, fs=8e6, window="hamming")
        theirs /= theirs.sum()
        assert np.allclose(ours, theirs, atol=1e-6)

    def test_rejects_bad_cutoff(self):
        with pytest.raises(ValueError):
            fir_lowpass(5e6, 8e6)
        with pytest.raises(ValueError):
            fir_lowpass(0.0, 8e6)

    def test_rejects_tiny_ntaps(self):
        with pytest.raises(ValueError):
            fir_lowpass(1e6, 8e6, ntaps=1)


class TestGaussianPulse:
    def test_unit_area(self):
        taps = gaussian_pulse(0.5, 8)
        assert taps.sum() == pytest.approx(1.0)

    def test_symmetric(self):
        taps = gaussian_pulse(0.5, 8)
        assert np.allclose(taps, taps[::-1])

    def test_narrower_for_higher_bt(self):
        wide = gaussian_pulse(0.3, 8)
        narrow = gaussian_pulse(1.0, 8)
        assert narrow.max() > wide.max()

    def test_rejects_bad_params(self):
        with pytest.raises(ValueError):
            gaussian_pulse(0.0, 8)
        with pytest.raises(ValueError):
            gaussian_pulse(0.5, 0)


class TestFilterSignal:
    def test_length_preserved(self):
        x = np.ones(100, dtype=np.complex64)
        taps = fir_lowpass(1e6, 8e6, 33)
        assert filter_signal(x, taps).size == 100

    def test_empty(self):
        assert filter_signal(np.zeros(0), np.ones(3)).size == 0

    def test_dc_passes(self):
        x = np.ones(200)
        taps = fir_lowpass(1e6, 8e6, 33)
        assert np.allclose(filter_signal(x, taps)[50:150], 1.0, atol=1e-3)


class TestRaisedCosineEdges:
    def test_flat_top(self):
        env = raised_cosine_edges(100, 10)
        assert np.allclose(env[10:90], 1.0)

    def test_starts_and_ends_low(self):
        env = raised_cosine_edges(100, 10)
        assert env[0] == pytest.approx(0.0)
        assert env[-1] < 0.05

    def test_short_envelope(self):
        env = raised_cosine_edges(4, 10)
        assert env.size == 4

    def test_zero_length(self):
        assert raised_cosine_edges(0, 5).size == 0
