"""Tests for repro.phy.barker."""

import numpy as np
import pytest

from repro.phy.barker import (
    barker_chips,
    phase_change_template,
    samples_per_symbol,
    spread_symbols,
    symbol_template,
)


class TestBarkerSequence:
    def test_length_11(self):
        assert barker_chips().size == 11

    def test_values_are_pm_one(self):
        assert set(np.unique(barker_chips())) == {-1.0, 1.0}

    def test_ideal_autocorrelation(self):
        # Barker property: off-peak aperiodic autocorrelation magnitude <= 1
        c = barker_chips()
        full = np.correlate(c, c, mode="full")
        peak = full[len(c) - 1]
        assert peak == pytest.approx(11.0)
        off = np.delete(full, len(c) - 1)
        assert np.max(np.abs(off)) <= 1.0 + 1e-9


class TestSpread:
    def test_spreading_length(self):
        out = spread_symbols(np.array([1.0, -1.0]))
        assert out.size == 22

    def test_symbol_sign_carried(self):
        out = spread_symbols(np.array([1.0, -1.0]))
        assert np.allclose(out[11:], -out[:11])

    def test_complex_symbols(self):
        out = spread_symbols(np.array([1j]))
        assert np.allclose(out, 1j * barker_chips())


class TestTemplates:
    def test_samples_per_symbol(self):
        assert samples_per_symbol(8e6) == pytest.approx(8.0)

    def test_template_length(self):
        assert symbol_template(8e6).size == 8

    def test_template_is_chip_subset(self):
        tmpl = symbol_template(8e6)
        chips = barker_chips()
        expected = chips[[0, 1, 2, 4, 5, 6, 8, 9]]
        assert np.allclose(tmpl, expected)

    def test_rejects_fractional_sps(self):
        with pytest.raises(ValueError):
            symbol_template(2.5e6)

    def test_phase_change_template_signs(self):
        pc = phase_change_template(8e6)
        assert pc.size == 7
        assert set(np.unique(pc)) <= {-1.0, 1.0}

    def test_distinct_phases_give_distinct_templates(self):
        t0 = symbol_template(8e6, 0.0)
        t_one = symbol_template(8e6, 1.0)
        assert not np.allclose(t0, t_one)
