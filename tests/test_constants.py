"""Tests for the protocol feature registry (paper Table 2)."""

import pytest

from repro.constants import (
    PROTOCOL_FEATURES,
    WIFI_DIFS,
    WIFI_SIFS,
    WIFI_SLOT_TIME,
    Modulation,
    Spreading,
    features_for,
)


class TestTimingConstants:
    def test_difs_identity(self):
        assert WIFI_DIFS == pytest.approx(WIFI_SIFS + 2 * WIFI_SLOT_TIME)
        assert WIFI_DIFS == pytest.approx(50e-6)

    def test_bluetooth_slot_rate(self):
        from repro.constants import BT_SLOT

        assert 1.0 / BT_SLOT == pytest.approx(1600.0)  # 1600 hops/s

    def test_microwave_period(self):
        from repro.constants import MICROWAVE_AC_PERIOD_60HZ

        assert MICROWAVE_AC_PERIOD_60HZ == pytest.approx(16.667e-3, rel=1e-3)


class TestRegistry:
    def test_table2_rows_present(self):
        for key in ("802.11b-1", "802.11b-2", "802.11b-5.5", "802.11b-11",
                    "802.11g", "bluetooth", "zigbee", "microwave"):
            assert key in PROTOCOL_FEATURES

    def test_wifi_1mbps_row(self):
        row = features_for("802.11b-1")
        assert row.modulation == (Modulation.DBPSK,)
        assert row.spreading == Spreading.BARKER
        assert row.channel_width == 22e6
        assert row.ifs == pytest.approx(10e-6)
        assert row.slot_time == pytest.approx(20e-6)

    def test_bluetooth_row(self):
        row = features_for("bluetooth")
        assert row.modulation == (Modulation.GFSK,)
        assert row.spreading == Spreading.FHSS
        assert row.channel_width == 1e6
        assert row.slot_time == pytest.approx(625e-6)
        assert row.extra["num_channels"] == 79

    def test_zigbee_row(self):
        row = features_for("zigbee")
        assert row.slot_time == pytest.approx(320e-6)
        assert row.ifs == pytest.approx(192e-6)
        assert row.extra["lifs"] == pytest.approx(640e-6)

    def test_unknown_key_lists_known(self):
        with pytest.raises(KeyError, match="802.11b-1"):
            features_for("nope")

    def test_channels(self):
        from repro.constants import WIFI_CHANNELS, ZIGBEE_CHANNELS

        assert WIFI_CHANNELS[0] == pytest.approx(2.412e9)
        assert WIFI_CHANNELS[10] == pytest.approx(2.462e9)
        assert len(ZIGBEE_CHANNELS) == 16
