"""Tests for the streaming monitor (window-overlap handling)."""

import numpy as np
import pytest

from repro import RFDumpMonitor, Scenario, WifiPingSession
from repro.core.streaming import StreamingMonitor
from repro.dsp.samples import SampleBuffer


def _windows(buffer, size):
    out = []
    for lo in range(0, len(buffer), size):
        out.append(buffer.slice(lo, min(lo + size, len(buffer))))
    return out


@pytest.fixture(scope="module")
def straddle_trace():
    """A trace whose second exchange straddles the 300k-sample boundary."""
    scenario = Scenario(duration=0.1, seed=33)
    scenario.add(WifiPingSession(n_pings=2, snr_db=20.0, interval=45e-3))
    return scenario.render()


class TestStreamingMonitor:
    def test_no_packets_lost_at_boundaries(self, straddle_trace):
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.run(_windows(straddle_trace.buffer, 300_000))
        truth = straddle_trace.ground_truth.observable("wifi")
        assert len(monitor.packets) == len(truth)

    def test_no_duplicates(self, straddle_trace):
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.run(_windows(straddle_trace.buffer, 200_000))
        starts = [p.start_sample for p in monitor.packets]
        assert len(starts) == len(set(starts))
        truth = straddle_trace.ground_truth.observable("wifi")
        assert len(starts) == len(truth)

    def test_matches_batch_monitor(self, straddle_trace):
        batch = RFDumpMonitor(protocols=("wifi",)).process(straddle_trace.buffer)
        stream = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        stream.run(_windows(straddle_trace.buffer, 250_000))
        assert sorted(p.start_sample for p in stream.packets) == sorted(
            p.start_sample for p in batch.packets
        )

    def test_rejects_gap_in_stream(self, straddle_trace):
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.process(straddle_trace.buffer.slice(0, 100_000))
        with pytest.raises(ValueError):
            monitor.process(straddle_trace.buffer.slice(200_000, 300_000))

    def test_clock_accumulates(self, straddle_trace):
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.run(_windows(straddle_trace.buffer, 400_000))
        assert monitor.clock.seconds["peak_detection"] > 0

    def test_rejects_negative_overlap(self):
        with pytest.raises(ValueError):
            StreamingMonitor(RFDumpMonitor(), overlap=-1)

    def test_first_window_shorter_than_overlap_clamps_frontier(
        self, straddle_trace
    ):
        """Regression: the emission frontier must never move backwards."""
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.process(straddle_trace.buffer.slice(0, 30_000))
        assert monitor._emitted_to == 0  # seed code: 30_000 - overlap < 0

    def test_flush_midstream_no_duplicates(self, straddle_trace):
        """Regression: a flushed packet re-detected from the carried tail
        must not be emitted again by the next window — and a packet still
        straddling the stream head must not be lost."""
        # 50k windows put fully-decodable packets inside the deferral
        # (overlap) region, so every flush releases results early
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        for window in _windows(straddle_trace.buffer, 50_000):
            monitor.process(window)
            monitor.flush()  # incremental consumer wants results now
        starts = [p.start_sample for p in monitor.packets]
        assert len(starts) == len(set(starts))
        truth = straddle_trace.ground_truth.observable("wifi")
        assert len(starts) == len(truth)

    def test_windows_shorter_than_overlap_no_duplicates(self, straddle_trace):
        """Regression: a window shorter than the overlap computes an
        emission frontier behind results a flush already released;
        without clamping, everything in between is re-emitted."""
        buffer = straddle_trace.buffer
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.process(buffer.slice(0, 50_000))
        monitor.flush()
        for lo in range(50_000, len(buffer), 20_000):  # < overlap windows
            monitor.process(buffer.slice(lo, min(lo + 20_000, len(buffer))))
        monitor.flush()
        starts = [p.start_sample for p in monitor.packets]
        assert len(starts) == len(set(starts))
        truth = straddle_trace.ground_truth.observable("wifi")
        assert len(starts) == len(truth)

    def test_empty_windows_are_harmless(self, straddle_trace):
        buffer = straddle_trace.buffer
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.process(buffer.slice(0, 0))  # empty stream head
        for window in _windows(buffer, 300_000):
            monitor.process(window)
            report = monitor.process(buffer.slice(
                window.end_sample, window.end_sample
            ))
            assert report.total_samples == 0
            assert report.packets == []
        monitor.flush()
        batch = RFDumpMonitor(protocols=("wifi",)).process(buffer)
        assert [p.start_sample for p in monitor.packets] == [
            p.start_sample for p in batch.packets
        ]

    def test_flush_is_idempotent(self, straddle_trace):
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.run(_windows(straddle_trace.buffer, 300_000))
        n_packets = len(monitor.packets)
        n_classifications = len(monitor.classifications)
        monitor.flush().flush()
        assert len(monitor.packets) == n_packets
        assert len(monitor.classifications) == n_classifications

    def test_classification_dedup(self, straddle_trace):
        monitor = StreamingMonitor(
            RFDumpMonitor(protocols=("wifi",), demodulate=False)
        )
        monitor.run(_windows(straddle_trace.buffer, 200_000))
        keys = [
            (c.peak.start_sample, c.detector) for c in monitor.classifications
        ]
        assert len(keys) == len(set(keys))

    def test_empty_discontiguous_window_does_not_raise(self, straddle_trace):
        """Regression: an empty window whose start does not match the
        carried tail used to hit the gap check before the early return —
        there is nothing to analyze or resync, so it must be a no-op."""
        buffer = straddle_trace.buffer
        monitor = StreamingMonitor(RFDumpMonitor(protocols=("wifi",)))
        monitor.process(buffer.slice(0, 300_000))
        report = monitor.process(buffer.slice(123_457, 123_457))
        assert report.total_samples == 0
        assert report.packets == []
        # the tail survived: the contiguous continuation still stitches
        monitor.process(buffer.slice(300_000, 600_000))
        assert monitor.gaps == 0

    def test_midstream_flush_classifications_match_batch(self, straddle_trace):
        """Satellite: classifications flushed mid-stream must be exactly
        the batch set, with no duplicates from tail re-detection."""
        from repro.core.config import MonitorConfig
        from repro.obs import Observability

        obs = Observability()
        monitor = StreamingMonitor(RFDumpMonitor(config=MonitorConfig(
            protocols=("wifi",), demodulate=False, obs=obs
        )))
        for window in _windows(straddle_trace.buffer, 50_000):
            monitor.process(window)
            monitor.flush()  # incremental consumer wants results now
        keys = [
            (c.peak.start_sample, c.detector) for c in monitor.classifications
        ]
        assert len(keys) == len(set(keys))
        batch = StreamingMonitor(
            RFDumpMonitor(protocols=("wifi",), demodulate=False)
        )
        batch.run(_windows(straddle_trace.buffer, 50_000))
        assert sorted(keys) == sorted(
            (c.peak.start_sample, c.detector) for c in batch.classifications
        )
        # mid-stream flushes released deferred classifications, and said so
        assert obs.registry.value(
            "rfdump_stream_flushed_classifications_total"
        ) > 0
