"""End-to-end integration: scenario -> trace -> RFDump -> scored report."""

import numpy as np
import pytest

from repro import (
    MicrowaveSource,
    RFDumpMonitor,
    Scenario,
    WifiBroadcastFlood,
    WifiPingSession,
    ZigbeePingSession,
    packet_miss_rate,
    render_packet_log,
)
from repro.analysis.stats import AccuracyReport, match_detections


class TestMixedTraffic:
    def test_both_protocols_detected(self, mixed_trace):
        report = RFDumpMonitor().process(mixed_trace.buffer)
        truth = mixed_trace.ground_truth
        wifi_miss = packet_miss_rate(
            truth, report.classifications_for("wifi"), "wifi"
        )
        assert wifi_miss < 0.05
        bt = match_detections(
            truth, report.classifications_for("bluetooth"), "bluetooth"
        )
        # collisions and session-first packets may be missed (Table 3)
        assert bt.miss_rate < 0.6

    def test_decoded_packets_match_truth_positions(self, mixed_trace):
        report = RFDumpMonitor().process(mixed_trace.buffer)
        truth = mixed_trace.ground_truth
        wifi_records = report.packets_for("wifi")
        assert packet_miss_rate(truth, wifi_records, "wifi") < 0.05

    def test_false_positive_rates_small(self, mixed_trace):
        report = RFDumpMonitor().process(mixed_trace.buffer)
        acc = AccuracyReport.evaluate(
            mixed_trace.ground_truth,
            {
                "wifi": report.classifications_for("wifi"),
                "bluetooth": report.classifications_for("bluetooth"),
            },
            {
                "wifi": report.forwarded_ranges("wifi"),
                "bluetooth": report.forwarded_ranges("bluetooth"),
            },
            report.total_samples,
        )
        assert acc.false_positive_rate["wifi"] < 0.05
        assert acc.false_positive_rate["bluetooth"] < 0.05

    def test_packet_log_renders(self, mixed_trace):
        report = RFDumpMonitor().process(mixed_trace.buffer)
        log = render_packet_log(report.packets, mixed_trace.sample_rate)
        assert "wifi" in log


class TestBroadcast:
    def test_difs_detector_end_to_end(self):
        scenario = Scenario(duration=0.06, seed=21)
        scenario.add(WifiBroadcastFlood(n_packets=10, snr_db=20.0, seed=3))
        trace = scenario.render()
        mon = RFDumpMonitor(kinds=("timing",), demodulate=False)
        report = mon.process(trace.buffer)
        miss = packet_miss_rate(
            trace.ground_truth, report.classifications_for("wifi"), "wifi"
        )
        assert miss < 0.05


class TestMicrowaveInterference:
    def test_microwave_classified(self):
        scenario = Scenario(duration=0.1, seed=22)
        scenario.add(MicrowaveSource(duration=0.1, snr_db=15.0))
        trace = scenario.render()
        mon = RFDumpMonitor(
            protocols=("microwave",), kinds=("timing",), demodulate=False
        )
        report = mon.process(trace.buffer)
        miss = packet_miss_rate(
            trace.ground_truth, report.classifications_for("microwave"),
            "microwave",
        )
        assert miss < 0.2  # first burst of a train has no predecessor

    def test_microwave_plus_wifi(self):
        scenario = Scenario(duration=0.1, seed=23)
        scenario.add(MicrowaveSource(duration=0.1, snr_db=12.0))
        # schedule the ping exchanges into the magnetron's off half-cycles
        # (colliding ones are legitimately lost; see the traffic-mix tests)
        scenario.add(
            WifiPingSession(
                n_pings=3, snr_db=20.0, payload_size=200,
                start=9e-3, interval=33.333e-3,
            )
        )
        trace = scenario.render()
        mon = RFDumpMonitor(
            protocols=("wifi", "microwave"), demodulate=False
        )
        report = mon.process(trace.buffer)
        assert report.classifications_for("microwave")
        assert report.classifications_for("wifi")


class TestZigbeeEndToEnd:
    def test_zigbee_pipeline(self):
        scenario = Scenario(duration=0.06, seed=24)
        scenario.add(ZigbeePingSession(n_packets=4, snr_db=20.0, interval=12e-3))
        trace = scenario.render()
        mon = RFDumpMonitor(protocols=("zigbee",), kinds=("timing",))
        report = mon.process(trace.buffer)
        truth = trace.ground_truth
        miss = packet_miss_rate(
            truth, report.classifications_for("zigbee"), "zigbee"
        )
        assert miss < 0.05
        assert len(report.packets_for("zigbee")) >= len(truth.observable("zigbee")) - 1


class TestSnrBehaviour:
    """Miniature Figure 6: near-zero misses at high SNR, cliff at low."""

    def _miss_at(self, snr_db):
        scenario = Scenario(duration=0.05, seed=31)
        scenario.add(
            WifiPingSession(n_pings=2, snr_db=snr_db, interval=22e-3, seed=6)
        )
        trace = scenario.render()
        mon = RFDumpMonitor(protocols=("wifi",), demodulate=False)
        report = mon.process(trace.buffer)
        return packet_miss_rate(
            trace.ground_truth, report.classifications_for("wifi"), "wifi"
        )

    def test_high_snr_near_zero(self):
        assert self._miss_at(20.0) == 0.0

    def test_below_threshold_all_missed(self):
        assert self._miss_at(0.0) > 0.8
