"""Tests for repro.emulator.traffic: MAC-timing correctness of generators."""

import numpy as np
import pytest

from repro.constants import BT_SLOT, WIFI_DIFS, WIFI_SIFS, WIFI_SLOT_TIME
from repro.emulator.traffic import (
    BluetoothL2PingSession,
    MicrowaveSource,
    WifiBeaconSource,
    WifiBroadcastFlood,
    WifiPingSession,
    ZigbeePingSession,
)


class TestWifiPing:
    def test_event_count(self):
        events = WifiPingSession(n_pings=5).events()
        assert len(events) == 20  # req + ack + reply + ack per ping

    def test_sifs_between_data_and_ack(self):
        events = WifiPingSession(n_pings=2).events()
        for i in (0, 2):  # request and reply
            gap = events[i + 1].time - events[i].end_time
            assert gap == pytest.approx(WIFI_SIFS, abs=1e-9)

    def test_acks_are_short(self):
        events = WifiPingSession(n_pings=1).events()
        acks = [e for e in events if e.kind == "ack"]
        assert all(e.payload_size == 14 for e in acks)

    def test_reply_spaced_by_difs_plus_slots(self):
        events = WifiPingSession(n_pings=1, seed=5).events()
        ack1, reply = events[1], events[2]
        gap = reply.time - ack1.end_time
        k = round((gap - WIFI_DIFS) / WIFI_SLOT_TIME)
        assert 0 <= k < 8
        assert gap == pytest.approx(WIFI_DIFS + k * WIFI_SLOT_TIME, abs=1e-9)

    def test_ping_interval(self):
        events = WifiPingSession(n_pings=3, interval=20e-3).events()
        reqs = [e for e in events if e.meta.get("direction") == "request"]
        assert reqs[1].time - reqs[0].time == pytest.approx(20e-3)

    def test_payload_sizes(self):
        events = WifiPingSession(n_pings=1, payload_size=500).events()
        data = [e for e in events if e.kind == "data"]
        assert all(e.payload_size == 528 for e in data)  # + MAC header + FCS

    def test_exchange_airtime_bounds_interval(self):
        session = WifiPingSession(n_pings=1)
        events = session.events()
        span = events[-1].end_time - events[0].time
        assert span <= session.exchange_airtime() + 1e-9


class TestBroadcastFlood:
    def test_count(self):
        assert len(WifiBroadcastFlood(n_packets=10).events()) == 10

    def test_difs_plus_k_slots_spacing(self):
        events = WifiBroadcastFlood(n_packets=20, cw=16, seed=1).events()
        for prev, nxt in zip(events, events[1:]):
            gap = nxt.time - prev.end_time
            k = round((gap - WIFI_DIFS) / WIFI_SLOT_TIME)
            assert 0 <= k <= 16
            assert gap == pytest.approx(WIFI_DIFS + k * WIFI_SLOT_TIME, abs=1e-9)

    def test_broadcast_kind(self):
        events = WifiBroadcastFlood(n_packets=2).events()
        assert all(e.kind == "broadcast" for e in events)


class TestBeacons:
    def test_interval(self):
        events = WifiBeaconSource(duration=0.5).events()
        assert len(events) == 5
        assert events[1].time - events[0].time == pytest.approx(102.4e-3)


class TestBluetoothL2Ping:
    def test_event_count(self):
        assert len(BluetoothL2PingSession(n_pings=10).events()) == 20

    def test_slot_alignment(self):
        session = BluetoothL2PingSession(n_pings=10, start=2e-3)
        for event in session.events():
            slots = (event.time - session.start) / BT_SLOT
            assert slots == pytest.approx(round(slots), abs=1e-9)

    def test_echo_five_slots_after_master(self):
        events = BluetoothL2PingSession(n_pings=2).events()
        assert events[1].time - events[0].time == pytest.approx(5 * BT_SLOT)

    def test_sizes_cycle_and_identify_sequence(self):
        session = BluetoothL2PingSession(n_pings=200, size_min=225, size_max=339)
        events = session.events()
        masters = [e for e in events if e.kind == "l2ping"]
        sizes = [e.payload_size for e in masters]
        assert min(sizes) == 225 and max(sizes) == 339
        # size determines seq within one cycle
        span = 339 - 225 + 1
        for i, e in enumerate(masters[:span]):
            assert e.payload_size == 225 + i

    def test_channels_follow_hop_kernel(self):
        from repro.phy.bluetooth_fh import hop_channel

        session = BluetoothL2PingSession(n_pings=5, address=0x42, start_clock=7)
        events = session.events()
        assert events[0].channel == hop_channel(0x42, 7)
        assert events[1].channel == hop_channel(0x42, 12)

    def test_rejects_odd_interval(self):
        with pytest.raises(ValueError):
            BluetoothL2PingSession(interval_slots=7)

    def test_airtime_fits_five_slots(self):
        events = BluetoothL2PingSession(n_pings=1, size_max=339).events()
        assert all(e.duration <= 5 * BT_SLOT for e in events)


class TestZigbee:
    def test_ack_spacing(self):
        from repro.constants import ZIGBEE_T_ACK

        events = ZigbeePingSession(n_packets=2).events()
        data, ack = events[0], events[1]
        assert ack.time - data.end_time == pytest.approx(ZIGBEE_T_ACK, abs=1e-9)

    def test_count(self):
        assert len(ZigbeePingSession(n_packets=5).events()) == 10


class TestMicrowave:
    def test_burst_events(self):
        events = MicrowaveSource(duration=0.05).events()
        assert len(events) == 3
        assert all(e.protocol == "microwave" for e in events)

    def test_start_offset_applied(self):
        events = MicrowaveSource(start=0.01, duration=0.05).events()
        assert events[0].time == pytest.approx(0.01)
