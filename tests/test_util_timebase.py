"""Tests for repro.util.timebase."""

import numpy as np
import pytest

from repro.util.timebase import Timebase


class TestTimebase:
    def test_to_time(self):
        tb = Timebase(8e6)
        assert tb.to_time(8_000_000) == pytest.approx(1.0)

    def test_epoch_offset(self):
        tb = Timebase(1e6, epoch=2.0)
        assert tb.to_time(0) == pytest.approx(2.0)
        assert tb.to_samples(2.0) == 0

    def test_round_trip(self):
        tb = Timebase(8e6)
        for n in (0, 1, 12345, 10**9):
            assert int(tb.to_samples(tb.to_time(n))) == n

    def test_array_conversion(self):
        tb = Timebase(2e6)
        times = tb.to_time(np.array([0, 2_000_000]))
        assert np.allclose(times, [0.0, 1.0])

    def test_to_samples_rounds_to_nearest(self):
        tb = Timebase(1000.0)
        assert int(tb.to_samples(0.0014)) == 1
        assert int(tb.to_samples(0.0016)) == 2

    def test_duration(self):
        tb = Timebase(8e6)
        assert tb.duration(200) == pytest.approx(25e-6)

    def test_samples_for(self):
        tb = Timebase(8e6)
        assert tb.samples_for(25e-6) == 200

    def test_rejects_nonpositive_rate(self):
        with pytest.raises(ValueError):
            Timebase(0.0)

    def test_frozen(self):
        tb = Timebase(8e6)
        with pytest.raises(Exception):
            tb.sample_rate = 1.0
