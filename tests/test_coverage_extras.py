"""Coverage for secondary paths: dict gates, naive with extra protocols,
scanning with demodulation, report rendering details."""

import numpy as np
import pytest

from repro import NaiveMonitor, RFDumpMonitor, Scenario
from repro.analysis.report import render_packet_log
from repro.core.detectors.base import Classification
from repro.core.dispatcher import Dispatcher
from repro.core.metadata import Peak
from repro.emulator.traffic import OfdmBurstSource, ZigbeePingSession


def _cls(protocol, confidence, index=0):
    return Classification(
        Peak(250, 1150, 1.0, 1.0, index=index), protocol, "t", confidence
    )


class TestPerProtocolGate:
    def test_dict_gates_only_named_protocol(self):
        dispatcher = Dispatcher(min_confidence={"bluetooth": 0.9})
        ranges = dispatcher.dispatch(
            [_cls("bluetooth", 0.5), _cls("wifi", 0.5, index=1)], 10_000
        )
        assert "bluetooth" not in ranges
        assert "wifi" in ranges

    def test_dict_validation(self):
        with pytest.raises(ValueError):
            Dispatcher(min_confidence={"wifi": 2.0})

    def test_monitor_accepts_gated_dispatcher(self, wifi_trace):
        monitor = RFDumpMonitor(protocols=("wifi",), demodulate=False)
        monitor.dispatcher = Dispatcher(min_confidence={"wifi": 0.99})
        report = monitor.process(wifi_trace.buffer)
        ungated = RFDumpMonitor(protocols=("wifi",), demodulate=False).process(
            wifi_trace.buffer
        )
        assert report.forwarded_samples("wifi") <= ungated.forwarded_samples("wifi")


class TestNaiveExtraProtocols:
    def test_naive_zigbee(self):
        scenario = Scenario(duration=0.04, seed=51)
        scenario.add(ZigbeePingSession(n_packets=2, snr_db=20.0, interval=15e-3))
        trace = scenario.render()
        report = NaiveMonitor(protocols=("zigbee",)).process(trace.buffer)
        truth = trace.ground_truth.observable("zigbee")
        assert len(report.packets_for("zigbee")) == len(truth)

    def test_rfdump_ofdm_with_naive_comparison(self):
        scenario = Scenario(duration=0.05, seed=52)
        scenario.add(OfdmBurstSource(n_packets=4, snr_db=20.0, interval=11e-3))
        trace = scenario.render()
        rfdump = RFDumpMonitor(protocols=("ofdm",), kinds=("phase",)).process(
            trace.buffer
        )
        truth = trace.ground_truth.observable("ofdm")
        assert len(rfdump.packets_for("ofdm")) == len(truth)
        # RFDump demodulated far fewer samples than the trace holds
        assert rfdump.clock.samples_touched["demodulation"] < 0.6 * len(
            trace.samples
        )


class TestScanningWithDemod:
    def test_scan_decodes_packets(self):
        from repro import WifiPingSession
        from repro.core.scanning import ScanningMonitor
        from repro.emulator.scanning import ScanPlan, render_scan

        scenario = Scenario(duration=0.05, seed=53)
        scenario.add(WifiPingSession(n_pings=2, snr_db=20.0, interval=22e-3))
        plan = ScanPlan(centers=[scenario.center_freq], dwell=0.025)
        monitor = ScanningMonitor(protocols=("wifi",), demodulate=True)
        monitor.scan(render_scan(scenario, plan))
        decoded = [p for r in monitor.reports for p in r.packets]
        assert decoded


class TestReportRendering:
    def test_snr_column_rendered(self, wifi_report, wifi_trace):
        log = render_packet_log(wifi_report.packets, wifi_trace.sample_rate)
        assert " dB" in log

    def test_ofdm_rows_render(self):
        from repro.analysis.decoders import PacketRecord
        from repro.phy.ofdm import OfdmPacket

        rec = PacketRecord(
            "ofdm", 800, 4000, True, "OfdmStreamDecoder", payload_size=100,
            decoded=OfdmPacket(payload=b"x" * 100),
        )
        log = render_packet_log([rec], 8e6)
        assert "ofdm" in log

    def test_short_preamble_info_in_records(self):
        from repro import WifiPingSession
        from repro.analysis.decoders import WifiStreamDecoder
        from repro.phy.wifi import WifiModulator
        from repro.phy.wifi_mac import build_data_frame
        from repro.dsp.samples import SampleBuffer
        from repro.util.timebase import Timebase

        mod = WifiModulator(8e6)
        wave = mod.modulate(build_data_frame(1, 2, b"s" * 40), 2.0,
                            preamble="short")
        rng = np.random.default_rng(4)
        rx = 0.05 * (rng.normal(size=wave.size + 800)
                     + 1j * rng.normal(size=wave.size + 800))
        rx[400:400 + wave.size] += wave
        buf = SampleBuffer(rx.astype(np.complex64), Timebase(8e6))
        records = WifiStreamDecoder(8e6).scan(buf)
        assert len(records) == 1
        assert records[0].info["preamble"] == "short"
