"""Runtime lock-order sanitizer: cycles, held-blocking, re-acquire.

These tests drive :mod:`repro.sanitize` directly (no ``--sanitize``
flag needed): a private :class:`LockOrderSanitizer` per test, wrapped
locks acquired in controlled orders, and assertions on the observed
graph and violation list.  The hooks-level tests check the injection
seam contract the production code relies on: plain ``threading``
primitives when nothing is installed, sanitized wrappers when it is.
"""

import threading

import pytest

from repro.sanitize import (
    LockOrderSanitizer,
    SanitizedCondition,
    SanitizedLock,
    hooks,
)


@pytest.fixture
def san():
    return LockOrderSanitizer()


class TestOrdering:
    def test_nested_acquire_records_edge(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        assert san.edges() == [("A", "B", 1)]
        assert san.report().ok

    def test_consistent_order_is_clean(self, san):
        a, b = san.lock("A"), san.lock("B")
        for _ in range(3):
            with a:
                with b:
                    pass
        (src, dst, count), = san.edges()
        assert (src, dst, count) == ("A", "B", 3)
        assert san.violations == []

    def test_inverted_order_is_a_cycle(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        cycles = san.order_cycles()
        assert len(cycles) == 1
        assert "lock-order inversion" in cycles[0].message
        assert "B -> A -> B" in cycles[0].message

    def test_cycle_through_intermediate_domain(self, san):
        a, b, c = san.lock("A"), san.lock("B"), san.lock("C")
        with a:
            with b:
                pass
        with b:
            with c:
                pass
        with c:
            with a:
                pass  # closes C -> A -> B -> C
        cycles = san.order_cycles()
        assert len(cycles) == 1
        assert "C -> A -> B -> C" in cycles[0].message

    def test_cycle_detected_across_threads(self, san):
        """Two threads each acquire in their own order; no real deadlock
        is staged (a barrier sequences them), but the graph still sees
        the inversion — that is the point of order sanitizing."""
        a, b = san.lock("A"), san.lock("B")
        first_done = threading.Event()

        def thread_one():
            with a:
                with b:
                    pass
            first_done.set()

        def thread_two():
            first_done.wait(timeout=5.0)
            with b:
                with a:
                    pass

        t1 = threading.Thread(target=thread_one, daemon=True)
        t2 = threading.Thread(target=thread_two, daemon=True)
        t1.start(); t2.start()
        t1.join(timeout=5.0); t2.join(timeout=5.0)
        assert len(san.order_cycles()) == 1

    def test_same_domain_nesting_flagged(self, san):
        one, two = san.lock("pool"), san.lock("pool")
        with one:
            with two:
                pass
        cycles = san.order_cycles()
        assert len(cycles) == 1
        assert "same-domain nesting" in cycles[0].message


class TestHeldBlocking:
    def test_unbounded_wait_while_holding_another_lock(self, san):
        outer = san.lock("outer")
        cond = san.condition("cv")

        def waiter():
            with outer:
                with cond:
                    cond.wait()  # unbounded, outer still held

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        # let the waiter reach the wait, then release it
        deadline_poll = 0
        while not san.violations and deadline_poll < 500:
            threading.Event().wait(0.002)
            deadline_poll += 1
        with cond:
            cond.notify_all()
        t.join(timeout=5.0)
        kinds = [v.kind for v in san.violations]
        assert kinds == ["held-blocking"]
        assert "'outer'" in san.violations[0].message

    def test_bounded_wait_is_fine(self, san):
        outer = san.lock("outer")
        cond = san.condition("cv")
        with outer:
            with cond:
                cond.wait(timeout=0.001)
        assert san.report().ok

    def test_wait_on_own_condition_alone_is_fine(self, san):
        cond = san.condition("cv")
        notifier = threading.Timer(0.05, lambda: _notify(cond))
        notifier.start()
        with cond:
            cond.wait()  # the cv protocol itself: nothing else held
        notifier.join(timeout=5.0)
        assert san.report().ok

    def test_wait_releases_and_reacquires_in_held_stack(self, san):
        """During wait the lock leaves the held stack (so no spurious
        edges), and returns to it afterwards."""
        cond = san.condition("cv")
        observed = []

        def waiter():
            with cond:
                cond.wait(timeout=2.0)
                observed.append(san.held_domains())

        t = threading.Thread(target=waiter, daemon=True)
        t.start()
        with cond:
            cond.notify_all()
        t.join(timeout=5.0)
        assert observed == [("cv",)]


class TestReacquire:
    def test_unbounded_reacquire_raises(self, san):
        lock = san.lock("L")
        with lock:
            with pytest.raises(RuntimeError, match="re-acquires"):
                lock.acquire()
        assert [v.kind for v in san.violations] == ["re-acquire"]

    def test_bounded_reacquire_records_but_returns(self, san):
        lock = san.lock("L")
        with lock:
            assert lock.acquire(timeout=0.001) is False
        assert [v.kind for v in san.violations] == ["re-acquire"]
        assert "bounded attempt" in san.violations[0].message


class TestReport:
    def test_report_counts_and_format(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        report = san.report()
        assert report.locks_created == 2
        assert report.ok
        text = report.format()
        assert "2 lock(s)" in text
        assert "order: A -> B (x1)" in text
        assert "0 violation(s)" in text

    def test_reset_clears_everything(self, san):
        with san.lock("A"):
            pass
        san.reset()
        report = san.report()
        assert report.locks_created == 0 and report.edges == []

    def test_violation_carries_a_stack(self, san):
        a, b = san.lock("A"), san.lock("B")
        with a:
            with b:
                pass
        with b:
            with a:
                pass
        assert "test_sanitize" in san.order_cycles()[0].stack


@pytest.fixture
def restore_hooks():
    """Preserve any session-wide sanitizer (``pytest --sanitize``)."""
    previous = hooks.current()
    yield
    if previous is not None:
        hooks.install(previous)
    else:
        hooks.uninstall()


class TestHooks:
    def test_plain_primitives_when_uninstalled(self, restore_hooks):
        hooks.uninstall()
        assert hooks.current() is None
        lock = hooks.new_lock("x")
        cond = hooks.new_condition("y")
        assert not isinstance(lock, SanitizedLock)
        assert not isinstance(cond, SanitizedCondition)
        with lock:
            pass
        with cond:
            cond.notify_all()

    def test_install_wraps_and_uninstall_restores(self, restore_hooks):
        san = hooks.install()
        assert hooks.current() is san
        lock = hooks.new_lock("service.hub")
        assert isinstance(lock, SanitizedLock)
        assert lock.domain == "service.hub"
        cond = hooks.new_condition("service.subscriber")
        assert isinstance(cond, SanitizedCondition)
        assert cond.domain == "service.subscriber"
        hooks.uninstall()
        assert hooks.current() is None
        assert not isinstance(hooks.new_lock("x"), SanitizedLock)

    def test_install_accepts_existing_sanitizer(self, restore_hooks):
        mine = LockOrderSanitizer()
        assert hooks.install(mine) is mine
        with hooks.new_lock("a"):
            with hooks.new_lock("b"):
                pass
        assert mine.edges() == [("a", "b", 1)]


def _notify(cond):
    with cond:
        cond.notify_all()
