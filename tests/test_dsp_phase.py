"""Tests for repro.dsp.phase."""

import numpy as np
import pytest

from repro.dsp.phase import (
    count_constellation_points,
    estimate_cfo,
    instantaneous_phase,
    phase_derivative,
    phase_histogram,
    phase_second_derivative,
    remove_cfo,
)


def _tone(freq, fs, n, phase0=0.0):
    return np.exp(1j * (phase0 + 2 * np.pi * freq * np.arange(n) / fs))


class TestDerivatives:
    def test_tone_first_derivative_constant(self):
        x = _tone(1e5, 8e6, 1000)
        d1 = phase_derivative(x)
        assert np.allclose(d1, 2 * np.pi * 1e5 / 8e6, atol=1e-6)

    def test_tone_second_derivative_zero(self):
        x = _tone(3e5, 8e6, 1000)
        d2 = phase_second_derivative(x)
        assert np.max(np.abs(d2)) < 1e-5

    def test_derivative_length(self):
        assert phase_derivative(np.ones(10, dtype=complex)).size == 9

    def test_short_inputs(self):
        assert phase_derivative(np.ones(1, dtype=complex)).size == 0
        assert phase_second_derivative(np.ones(2, dtype=complex)).size == 0

    def test_bpsk_flip_appears_as_pi(self):
        x = np.concatenate([np.ones(10), -np.ones(10)]).astype(complex)
        d1 = phase_derivative(x)
        assert abs(abs(d1[9]) - np.pi) < 1e-9

    def test_wrap_at_high_offset(self):
        # 3 MHz at 8 Msps: per-sample step 0.75*pi, still within (-pi, pi]
        x = _tone(3e6, 8e6, 100)
        d1 = phase_derivative(x)
        assert np.allclose(d1, 0.75 * np.pi, atol=1e-6)


class TestCfo:
    def test_estimate_positive(self):
        x = _tone(2e5, 8e6, 4000)
        assert estimate_cfo(x, 8e6) == pytest.approx(2e5, rel=1e-3)

    def test_estimate_negative(self):
        x = _tone(-1e5, 8e6, 4000)
        assert estimate_cfo(x, 8e6) == pytest.approx(-1e5, rel=1e-3)

    def test_remove_cfo_round_trip(self):
        x = _tone(2.5e5, 8e6, 2000)
        centered = remove_cfo(x, 2.5e5, 8e6)
        assert abs(estimate_cfo(centered, 8e6)) < 100.0

    def test_empty(self):
        assert estimate_cfo(np.zeros(0, dtype=complex), 8e6) == 0.0


class TestHistogram:
    def test_bin_count(self):
        counts = phase_histogram(np.zeros(10), nbins=8)
        assert counts.size == 8
        assert counts.sum() == 10

    def test_rejects_bad_bins(self):
        with pytest.raises(ValueError):
            phase_histogram(np.zeros(4), nbins=0)


class TestConstellationCount:
    def test_dbpsk_two_clusters(self, rng):
        jumps = rng.choice([0.0, np.pi], size=500) + rng.normal(0, 0.05, 500)
        assert count_constellation_points(jumps) == 2

    def test_dqpsk_four_clusters(self, rng):
        jumps = rng.choice([0.0, np.pi / 2, np.pi, -np.pi / 2], size=800)
        jumps = jumps + rng.normal(0, 0.05, 800)
        assert count_constellation_points(jumps) == 4

    def test_uniform_is_not_psk(self, rng):
        jumps = rng.uniform(-np.pi, np.pi, size=2000)
        assert count_constellation_points(jumps) <= 1

    def test_empty(self):
        assert count_constellation_points(np.zeros(0)) == 0

    def test_cluster_straddling_wrap_counted_once(self, rng):
        # jumps of +/- pi land on the wrap boundary; must count as ONE cluster
        jumps = np.pi * np.ones(300) + rng.normal(0, 0.08, 300)
        jumps = np.angle(np.exp(1j * jumps))
        assert count_constellation_points(jumps) == 1
