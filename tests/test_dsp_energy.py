"""Tests for repro.dsp.energy."""

import numpy as np
import pytest

from repro.dsp.energy import (
    NoiseFloorEstimator,
    chunk_average_power,
    estimate_noise_floor,
    moving_average_power,
)


class TestMovingAverage:
    def test_constant_signal(self):
        x = 2.0 * np.ones(100, dtype=np.complex64)
        out = moving_average_power(x, 10)
        assert np.allclose(out, 4.0)

    def test_length_preserved(self):
        out = moving_average_power(np.ones(57, dtype=np.complex64), 20)
        assert out.size == 57

    def test_step_response(self):
        x = np.concatenate([np.zeros(50), np.ones(50)]).astype(np.complex64)
        out = moving_average_power(x, 10)
        assert out[49] == pytest.approx(0.0)
        assert out[59] == pytest.approx(1.0)
        assert 0 < out[54] < 1

    def test_prefix_uses_available_samples(self):
        x = np.ones(5, dtype=np.complex64)
        out = moving_average_power(x, 20)
        assert np.allclose(out, 1.0)

    def test_empty_input(self):
        assert moving_average_power(np.zeros(0, dtype=np.complex64), 10).size == 0

    def test_rejects_bad_window(self):
        with pytest.raises(ValueError):
            moving_average_power(np.ones(10), 0)

    def test_matches_naive_implementation(self):
        rng = np.random.default_rng(0)
        x = rng.normal(size=200) + 1j * rng.normal(size=200)
        window = 16
        out = moving_average_power(x, window)
        power = np.abs(x) ** 2
        naive = np.array(
            [power[max(0, i - window + 1) : i + 1].mean() for i in range(200)]
        )
        assert np.allclose(out, naive)


class TestChunkAverage:
    def test_exact_chunks(self):
        x = np.ones(400, dtype=np.complex64)
        assert chunk_average_power(x, 200).size == 2

    def test_tail_partial_chunk(self):
        x = np.ones(450, dtype=np.complex64)
        out = chunk_average_power(x, 200)
        assert out.size == 3
        assert out[-1] == pytest.approx(1.0)

    def test_values(self):
        x = np.concatenate([np.zeros(200), 2 * np.ones(200)]).astype(np.complex64)
        out = chunk_average_power(x, 200)
        assert out[0] == pytest.approx(0.0)
        assert out[1] == pytest.approx(4.0)

    def test_empty(self):
        assert chunk_average_power(np.zeros(0, dtype=np.complex64), 200).size == 0


class TestNoiseFloor:
    def test_idle_trace_floor_is_noise_power(self, rng):
        noise = (rng.normal(size=20000) + 1j * rng.normal(size=20000)) / np.sqrt(2)
        floor = estimate_noise_floor(noise.astype(np.complex64))
        assert floor == pytest.approx(1.0, rel=0.15)

    def test_busy_trace_floor_ignores_signal(self, rng):
        noise = (rng.normal(size=40000) + 1j * rng.normal(size=40000)) / np.sqrt(2)
        trace = noise.astype(np.complex64)
        trace[8000:24000] += 10.0  # a strong long transmission
        floor = estimate_noise_floor(trace)
        assert floor < 2.0

    def test_streaming_updates(self, rng):
        est = NoiseFloorEstimator()
        with pytest.raises(RuntimeError):
            _ = est.noise_floor
        est.update(np.ones(50))
        assert est.noise_floor == pytest.approx(1.0)
        assert est.n_observed == 50

    def test_history_bounded(self):
        est = NoiseFloorEstimator(max_history=100)
        est.update(np.ones(500))
        assert est.n_observed == 100

    def test_rejects_bad_percentile(self):
        with pytest.raises(ValueError):
            NoiseFloorEstimator(percentile=0.0)
