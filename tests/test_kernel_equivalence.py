"""Serial-vs-vectorized kernel equivalence over realistic traces.

The vectorized detection kernels (interval merge, per-peak statistics,
peak->chunk assignment) must produce byte-identical integer outputs and
ULP-identical statistics compared to the retained ``impl="reference"``
loops — over the same seeded emulator workloads the paper's figures
use, and through classification into dispatch.
"""

import numpy as np
import pytest

from repro.bench.equivalence import (
    EquivalenceError,
    assert_detection_equivalence,
    compare_detections,
)
from repro.bench.scenarios import peak_soup, preset_buffer
from repro.core.peak_detector import PeakDetector, PeakDetectorConfig
from repro.core.pipeline import default_detectors
from repro.dsp.samples import SampleBuffer
from repro.util.timebase import Timebase


@pytest.mark.parametrize("preset,duration,seed", [
    ("mix", 0.03, 1),
    ("wifi", 0.03, 2),   # unicast ping sessions (the fig6 workload family)
    ("bluetooth", 0.06, 3),
])
def test_presets_detect_identically_through_dispatch(preset, duration, seed):
    buffer = preset_buffer(preset, duration, seed=seed)
    detectors = default_detectors(("wifi", "bluetooth"), ("timing", "phase"))
    summary = assert_detection_equivalence(buffer, detectors=detectors)
    assert summary["peaks"] > 0
    assert "dispatched_ranges" in summary


def test_peak_soup_detects_identically():
    cfg = PeakDetectorConfig(chunk_samples=50)
    summary = assert_detection_equivalence(peak_soup(100_000), config=cfg)
    # the soup exists to stress the per-peak kernels; make sure it does
    assert summary["peaks"] >= 900
    assert summary["chunks"] == 2000


def test_empty_and_all_noise_buffers_agree():
    rng = np.random.default_rng(11)
    x = np.sqrt(0.5) * (rng.normal(size=20_000) + 1j * rng.normal(size=20_000))
    quiet = SampleBuffer(x.astype(np.complex64), Timebase(20e6))
    summary = assert_detection_equivalence(quiet)
    assert summary["peaks"] == 0


def test_offset_buffer_agrees():
    # a buffer that does not start at sample zero exercises the
    # start_sample arithmetic in both chunk-metadata kernels
    buf = peak_soup(60_000)
    shifted = SampleBuffer(buf.samples, Timebase(20e6), start_sample=12_345)
    assert_detection_equivalence(shifted,
                                 config=PeakDetectorConfig(chunk_samples=50))


def test_compare_detections_flags_divergence():
    buf = peak_soup(50_000)
    cfg = PeakDetectorConfig(chunk_samples=50)
    a = PeakDetector(cfg, impl="reference").detect(buf)
    b = PeakDetector(cfg, impl="vectorized").detect(buf)
    compare_detections(a, b)  # sanity: agreement passes

    # tamper with one interval end; the comparison must notice
    b.history._ends[0] += 1  # noqa: SLF001
    b.history._invalidate()  # noqa: SLF001
    with pytest.raises(EquivalenceError):
        compare_detections(a, b)


def test_unknown_impl_rejected():
    with pytest.raises(ValueError):
        PeakDetector(impl="fortran")
