"""Tests for repro.core.metadata."""

import numpy as np
import pytest

from repro.core.metadata import ChunkMetadata, Peak, PeakHistory


class TestPeak:
    def test_length_and_duration(self):
        peak = Peak(100, 900, 1.0, 2.0)
        assert peak.length == 800
        assert peak.duration(8e6) == pytest.approx(1e-4)

    def test_times(self):
        peak = Peak(800, 1600, 1.0, 2.0)
        assert peak.start_time(8e6) == pytest.approx(1e-4)
        assert peak.end_time(8e6) == pytest.approx(2e-4)

    def test_overlaps(self):
        peak = Peak(100, 200, 1.0, 1.0)
        assert peak.overlaps(150, 300)
        assert not peak.overlaps(200, 300)  # half-open

    def test_frozen(self):
        with pytest.raises(Exception):
            Peak(0, 1, 1.0, 1.0).start_sample = 5


class TestPeakHistory:
    def _history(self):
        h = PeakHistory(8e6)
        h.append(0, 100, 1.0, 2.0)
        h.append(5000, 5100, 1.0, 2.0)
        h.append(10000, 10100, 1.0, 2.0)
        return h

    def test_append_assigns_index(self):
        h = self._history()
        assert [p.index for p in h] == [0, 1, 2]

    def test_len_getitem(self):
        h = self._history()
        assert len(h) == 3
        assert h[1].start_sample == 5000

    def test_starts_ends_arrays(self):
        h = self._history()
        assert h.starts.tolist() == [0, 5000, 10000]
        assert h.ends.tolist() == [100, 5100, 10100]

    def test_before_window(self):
        h = self._history()
        assert [p.index for p in h.before(2)] == [0, 1]
        assert [p.index for p in h.before(2, window=1)] == [1]

    def test_starts_near(self):
        h = self._history()
        # looking back 5000 samples from peak 2 with tolerance 150
        found = h.starts_near(2, np.array([5000]), 150)
        assert [p.index for p in found] == [1]

    def test_starts_near_empty_for_first(self):
        h = self._history()
        assert h.starts_near(0, np.array([0]), 100) == []


class TestChunkMetadata:
    def test_fields(self):
        h = PeakHistory(8e6)
        meta = ChunkMetadata(
            start_sample=200, n_samples=200, mean_power=1.5, n_peaks=0,
            active=False, history=h,
        )
        assert meta.peak_indices == []
        assert meta.history is h
