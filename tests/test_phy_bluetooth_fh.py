"""Tests for repro.phy.bluetooth_fh."""

import numpy as np
import pytest

from repro.constants import BT_NUM_CHANNELS
from repro.phy.bluetooth_fh import (
    channel_freq,
    channels_in_band,
    hop_channel,
    hop_sequence,
)


class TestHopKernel:
    def test_deterministic(self):
        assert hop_channel(0x2A96EF, 100) == hop_channel(0x2A96EF, 100)

    def test_in_range(self):
        for clk in range(200):
            assert 0 <= hop_channel(1, clk) < BT_NUM_CHANNELS

    def test_covers_most_channels(self):
        channels = {hop_channel(0x2A96EF, clk) for clk in range(2000)}
        assert len(channels) == BT_NUM_CHANNELS

    def test_roughly_uniform(self):
        seq = hop_sequence(0x2A96EF, 0, 79 * 200)
        counts = np.bincount(seq, minlength=79)
        assert counts.min() > 100
        assert counts.max() < 350

    def test_address_decorrelates(self):
        a = hop_sequence(1, 0, 500)
        b = hop_sequence(2, 0, 500)
        assert np.mean(a == b) < 0.1

    def test_sequence_matches_kernel(self):
        seq = hop_sequence(7, 40, 10)
        assert seq[3] == hop_channel(7, 43)


class TestChannelFreq:
    def test_channel_zero(self):
        assert channel_freq(0) == pytest.approx(2.402e9)

    def test_channel_spacing(self):
        assert channel_freq(10) - channel_freq(9) == pytest.approx(1e6)

    def test_rejects_out_of_range(self):
        with pytest.raises(ValueError):
            channel_freq(79)
        with pytest.raises(ValueError):
            channel_freq(-1)


class TestChannelsInBand:
    def test_eight_mhz_band_holds_about_8(self):
        chans = channels_in_band(2.441e9, 8e6)
        assert 6 <= len(chans) <= 8

    def test_all_visible_with_full_band(self):
        chans = channels_in_band(2.4415e9, 100e6)
        assert len(chans) == BT_NUM_CHANNELS

    def test_narrow_band_sees_at_most_center_channel(self):
        assert len(channels_in_band(2.441e9, 1e6)) <= 1
        assert len(channels_in_band(2.441e9, 0.5e6)) == 0

    def test_channels_actually_inside(self):
        center, bw = 2.441e9, 8e6
        for ch in channels_in_band(center, bw):
            assert abs(channel_freq(int(ch)) - center) <= bw / 2
