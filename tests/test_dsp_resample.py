"""Tests for repro.dsp.resample (the 11:8 fractional machinery)."""

import numpy as np
import pytest

from repro.dsp.resample import fractional_indices, repeat_to_rate, sample_held


class TestFractionalIndices:
    def test_unity_rate(self):
        idx = fractional_indices(5, 1.0, 1.0)
        assert idx.tolist() == [0, 1, 2, 3, 4]

    def test_11_to_8_pattern(self):
        # the USRP's chips-per-sample pattern: floor(n * 11/8)
        idx = fractional_indices(8, 11e6, 8e6)
        assert idx.tolist() == [0, 1, 2, 4, 5, 6, 8, 9]

    def test_phase_shifts_pattern(self):
        base = fractional_indices(8, 11e6, 8e6, phase=0.0)
        shifted = fractional_indices(8, 11e6, 8e6, phase=1.0)
        assert (shifted == base + 1).all()

    def test_empty(self):
        assert fractional_indices(0, 11e6, 8e6).size == 0

    def test_rejects_bad_rates(self):
        with pytest.raises(ValueError):
            fractional_indices(10, 0.0, 8e6)
        with pytest.raises(ValueError):
            fractional_indices(-1, 1.0, 1.0)


class TestSampleHeld:
    def test_holds_values(self):
        values = np.array([1.0, 2.0, 3.0])
        out = sample_held(values, 6, 1.0, 2.0)
        assert out.tolist() == [1.0, 1.0, 2.0, 2.0, 3.0, 3.0]

    def test_clamps_past_end(self):
        values = np.array([1.0, 2.0])
        out = sample_held(values, 5, 1.0, 1.0)
        assert out.tolist() == [1.0, 2.0, 2.0, 2.0, 2.0]

    def test_rejects_empty_values(self):
        with pytest.raises(ValueError):
            sample_held(np.zeros(0), 5, 1.0, 1.0)

    def test_chip_duration_statistics(self):
        # sampling an 11 Mchip stream at 8 Msps: each chip is seen by 0, 1
        # or 2 samples, averaging 8/11
        chips = np.arange(110)
        out = sample_held(chips, 80, 11e6, 8e6)
        counts = np.bincount(out.astype(int), minlength=110)
        assert counts.max() <= 2
        assert counts[:109].mean() == pytest.approx(8 / 11, abs=0.05)


class TestRepeat:
    def test_repeat(self):
        out = repeat_to_rate(np.array([1, 2]), 3)
        assert out.tolist() == [1, 1, 1, 2, 2, 2]

    def test_rejects_bad_factor(self):
        with pytest.raises(ValueError):
            repeat_to_rate(np.array([1]), 0)
