"""End-to-end observability: the pipeline's metrics and traces.

The acceptance bar for the obs subsystem: deterministic counters are
identical across serial and parallel runs (the paper's Table 1 / Fig 9
quantities must not depend on the worker pool), spans nest stage ->
detector/task -> range under both pool backends, and the streaming /
flowgraph layers report their own load.
"""

import pytest

from repro import MonitorConfig, Observability, RFDumpMonitor
from repro.core.accounting import StageClock
from repro.core.pipeline import MonitorReport
from repro.core.streaming import StreamingMonitor
from repro.flowgraph import CollectSink, FlowGraph, FunctionBlock, SourceBlock
from repro.obs.metrics import Counter


class _ItemSource(SourceBlock):
    def __init__(self, values):
        super().__init__("item-source")
        self._values = values

    def items(self):
        return iter(self._values)


def _monitor(trace, obs, **overrides):
    config = MonitorConfig(
        sample_rate=trace.sample_rate,
        center_freq=trace.center_freq,
        obs=obs,
        **overrides,
    )
    return RFDumpMonitor(config=config)


def _counter_values(obs):
    """Every counter series as {(name, labels): value}."""
    return {
        m.key: m.value
        for m in obs.registry.collect()
        if isinstance(m, Counter)
    }


class TestPipelineMetrics:
    def test_core_counters_present(self, mixed_trace):
        obs = Observability()
        report = _monitor(mixed_trace, obs).process(mixed_trace.buffer)
        reg = obs.registry
        assert reg.value("rfdump_samples_total") == len(mixed_trace.buffer)
        assert reg.value("rfdump_peaks_total") == len(report.peaks)
        decoded = sum(
            m.value for m in reg.series("rfdump_packets_decoded_total")
        )
        assert decoded == len(report.packets)
        classified = sum(
            m.value for m in reg.series("rfdump_classifications_total")
        )
        assert classified == len(report.classifications)
        # stage clock forwarded into the registry exactly once
        assert reg.value(
            "rfdump_stage_samples_total", stage="peak_detection"
        ) == report.clock.samples_touched["peak_detection"]

    def test_serial_parallel_counters_identical(self, mixed_trace):
        runs = {}
        for workers in (1, 4):
            obs = Observability()
            _monitor(mixed_trace, obs, workers=workers).process(
                mixed_trace.buffer
            )
            runs[workers] = _counter_values(obs)
        assert runs[1] == runs[4]

    def test_serial_parallel_counters_identical_process_backend(self, wifi_trace):
        runs = {}
        for workers, backend in ((1, "thread"), (2, "process")):
            obs = Observability()
            _monitor(
                wifi_trace, obs, protocols=("wifi",),
                workers=workers, backend=backend,
            ).process(wifi_trace.buffer)
            runs[backend] = _counter_values(obs)
        assert runs["thread"] == runs["process"]

    def test_noise_floor_gauge(self, wifi_trace):
        obs = Observability()
        report = _monitor(wifi_trace, obs, protocols=("wifi",)).process(
            wifi_trace.buffer
        )
        assert obs.registry.value("rfdump_noise_floor_power") == pytest.approx(
            report.noise_floor
        )


def _span_tree(obs):
    """{name: span} plus children lists, for nesting assertions."""
    spans = obs.tracer.spans
    children = {s.id: [] for s in spans}
    for s in spans:
        if s.parent is not None:
            children[s.parent].append(s)
    return spans, children


class TestPipelineSpans:
    @pytest.mark.parametrize("workers,backend", [
        (1, "thread"),   # serial: spans opened inline
        (2, "thread"),   # pool: spans replayed from worker measurements
        (2, "process"),  # cross-process: spans shipped back as dicts
    ])
    def test_nesting_stage_task_range(self, wifi_trace, workers, backend):
        obs = Observability()
        _monitor(
            wifi_trace, obs, protocols=("wifi",),
            workers=workers, backend=backend,
        ).process(wifi_trace.buffer)
        spans, children = _span_tree(obs)
        by_name = {}
        for s in spans:
            by_name.setdefault(s.name, s)
        process = by_name["process"]
        assert process.parent is None
        kid_names = {s.name for s in children[process.id]}
        assert "peak_detection" in kid_names
        assert "analysis" in kid_names
        analysis = by_name["analysis"]
        tasks = children[analysis.id]
        assert tasks and all(t.name.startswith("demod[") for t in tasks)
        ranges = [r for t in tasks for r in children[t.id]]
        assert ranges and all(r.category == "range" for r in ranges)
        assert all(
            r.start_sample is not None and r.end_sample > r.start_sample
            for r in ranges
        )

    def test_trace_structure_matches_across_worker_counts(self, wifi_trace):
        structures = []
        for workers in (1, 2):
            obs = Observability()
            _monitor(
                wifi_trace, obs, protocols=("wifi",), workers=workers,
            ).process(wifi_trace.buffer)
            spans, children = _span_tree(obs)

            def shape(span):
                return (
                    span.name, span.category,
                    span.start_sample, span.end_sample,
                    sorted(shape(c) for c in children[span.id]),
                )

            roots = [s for s in spans if s.parent is None]
            structures.append(sorted(shape(r) for r in roots))
        assert structures[0] == structures[1]


class TestStreamingMetrics:
    def test_window_flush_and_frontier_metrics(self, mixed_trace):
        obs = Observability()
        config = MonitorConfig(
            sample_rate=mixed_trace.sample_rate,
            center_freq=mixed_trace.center_freq,
            obs=obs,
        )
        streaming = StreamingMonitor(config=config)
        total = len(mixed_trace.buffer)
        window = total // 3
        for start in range(0, total, window):
            streaming.process(
                mixed_trace.buffer.slice(start, min(start + window, total))
            )
        streaming.flush()
        reg = obs.registry
        assert reg.value("rfdump_stream_windows_total") >= 3
        assert reg.value("rfdump_stream_flushes_total") == 1
        # gauges exist once a window has been stitched
        assert reg.value("rfdump_stream_frontier_lag_samples") is not None

    def test_streaming_inherits_inner_monitor_obs(self, wifi_trace):
        obs = Observability()
        monitor = _monitor(wifi_trace, obs, protocols=("wifi",))
        streaming = StreamingMonitor(monitor)
        assert streaming.obs is obs


class TestFlowgraphMetrics:
    def test_per_block_item_counts(self):
        obs = Observability()
        sink = CollectSink()
        double = FunctionBlock(lambda x: x * 2, "double")
        graph = FlowGraph(obs=obs)
        graph.chain(_ItemSource([1, 2, 3]), double, sink)
        graph.run()
        assert obs.registry.value(
            "flowgraph_items_total", block="double"
        ) == 3
        assert obs.registry.value(
            "flowgraph_items_total", block=sink.name
        ) == 3

    def test_sample_counts_for_buffers(self, wifi_trace):
        obs = Observability()
        sink = CollectSink()
        graph = FlowGraph(obs=obs)
        graph.chain(_ItemSource([wifi_trace.buffer]), sink)
        graph.run()
        assert obs.registry.value(
            "flowgraph_samples_total", block=sink.name
        ) == len(wifi_trace.buffer)

    def test_no_obs_is_free(self):
        sink = CollectSink()
        graph = FlowGraph()
        graph.chain(_ItemSource([1]), sink)
        graph.run()
        assert sink.items == [1]


class TestCpuOverRealtime:
    def test_zero_duration_report_is_zero(self):
        report = MonitorReport(
            total_samples=0, duration=0.0, peaks=None,
            classifications=[], ranges={}, packets=[], clock=StageClock(),
        )
        assert report.cpu_over_realtime == 0.0

    def test_positive_duration_ratio(self, wifi_report):
        assert wifi_report.cpu_over_realtime > 0.0
