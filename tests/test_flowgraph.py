"""Tests for repro.flowgraph."""

import numpy as np
import pytest

from repro.dsp.samples import SampleBuffer
from repro.errors import FlowGraphError, SchedulerError
from repro.flowgraph import (
    Block,
    BufferChunkSource,
    CallbackSink,
    CollectSink,
    EnergyFilterBlock,
    FlowGraph,
    FunctionBlock,
    SourceBlock,
)
from repro.util.timebase import Timebase


class _ListSource(SourceBlock):
    def __init__(self, values):
        super().__init__("list-source")
        self._values = values

    def items(self):
        return iter(self._values)


class TestWiring:
    def test_simple_chain(self):
        sink = CollectSink()
        graph = FlowGraph()
        graph.chain(_ListSource([1, 2, 3]), FunctionBlock(lambda x: x * 2), sink)
        graph.run()
        assert sink.items == [2, 4, 6]

    def test_fan_out(self):
        a, b = CollectSink("a"), CollectSink("b")
        src = _ListSource([1, 2])
        graph = FlowGraph()
        graph.connect(src, a)
        graph.connect(src, b)
        graph.run()
        assert a.items == b.items == [1, 2]

    def test_filter_drops(self):
        sink = CollectSink()
        keep_even = FunctionBlock(lambda x: x if x % 2 == 0 else None, "even")
        graph = FlowGraph().chain(_ListSource(range(6)), keep_even, sink)
        graph.run()
        assert sink.items == [0, 2, 4]

    def test_function_block_expands_lists(self):
        sink = CollectSink()
        split = FunctionBlock(lambda x: [x, x], "dup")
        graph = FlowGraph().chain(_ListSource([1]), split, sink)
        graph.run()
        assert sink.items == [1, 1]

    def test_cycle_rejected(self):
        a = FunctionBlock(lambda x: x, "a")
        b = FunctionBlock(lambda x: x, "b")
        graph = FlowGraph()
        graph.connect(a, b)
        with pytest.raises(FlowGraphError):
            graph.connect(b, a)

    def test_connect_into_source_rejected(self):
        graph = FlowGraph()
        with pytest.raises(FlowGraphError):
            graph.connect(FunctionBlock(lambda x: x), _ListSource([]))

    def test_run_without_source(self):
        graph = FlowGraph()
        graph.add(CollectSink())
        with pytest.raises(SchedulerError):
            graph.run()

    def test_callback_sink(self):
        seen = []
        graph = FlowGraph().chain(_ListSource([5]), CallbackSink(seen.append))
        graph.run()
        assert seen == [5]

    def test_finish_flushes_buffered_state(self):
        class Pairs(Block):
            def start(self):
                self._held = None

            def work(self, item):
                if self._held is None:
                    self._held = item
                    return []
                pair = (self._held, item)
                self._held = None
                return [pair]

            def finish(self):
                if self._held is not None:
                    return [(self._held, None)]
                return []

        sink = CollectSink()
        graph = FlowGraph().chain(_ListSource([1, 2, 3]), Pairs(), sink)
        graph.run()
        assert sink.items == [(1, 2), (3, None)]

    def test_rerun_resets_state(self):
        sink = CollectSink()
        graph = FlowGraph().chain(_ListSource([1]), sink)
        graph.run()
        graph.run()
        assert sink.items == [1]


class TestChunkBlocks:
    def _buffer(self):
        rng = np.random.default_rng(0)
        noise = 0.1 * (rng.normal(size=2000) + 1j * rng.normal(size=2000))
        noise[600:1000] += 3.0  # a strong burst
        return SampleBuffer(noise.astype(np.complex64), Timebase(8e6))

    def test_chunk_source(self):
        sink = CollectSink()
        graph = FlowGraph().chain(BufferChunkSource(self._buffer(), 200), sink)
        graph.run()
        assert len(sink.items) == 10
        assert sink.items[3][0] == 600

    def test_energy_filter_block(self):
        buf = self._buffer()
        filt = EnergyFilterBlock(noise_floor=0.01)
        sink = CollectSink()
        graph = FlowGraph().chain(BufferChunkSource(buf, 200), filt, sink)
        graph.run()
        passed_starts = [s for s, _ in sink.items]
        assert passed_starts == [600, 800]
        assert filt.passed == 2
        assert filt.dropped == 8
