"""repro.bench harness: results schema, comparisons, runner, CLI gate."""

import numpy as np
import pytest

from repro.bench.machine import calibrate
from repro.bench.registry import Benchmark, BenchContext
from repro.bench.results import (
    SCHEMA_VERSION,
    BenchResult,
    compare_results,
    load_result,
    load_results,
    machine_fingerprint,
    render_comparison,
    write_result,
)
from repro.bench.runner import BenchOptions, BenchRunner
from repro.obs import Observability
from repro.tools import rfbench


def _result(name="peak_detection", normalized=1.0, **overrides):
    kwargs = dict(
        name=name, n_samples=1000, repeats=3, warmup=1,
        seconds=[0.2, 0.1, 0.3], samples_per_second=10_000.0,
        normalized=normalized, calibration_sps=1e8,
    )
    kwargs.update(overrides)
    return BenchResult(**kwargs)


class TestResults:
    def test_roundtrip(self, tmp_path):
        original = _result(impl="reference", quick=True,
                           equivalence_checked=True, meta={"peaks": 7})
        path = write_result(str(tmp_path), original)
        assert path.endswith("BENCH_peak_detection.json")
        loaded, machine = load_result(path)
        assert loaded == original
        assert machine == machine_fingerprint()

    def test_median_seconds(self):
        assert _result().median_seconds == 0.2
        assert _result(seconds=[0.4, 0.1]).median_seconds == pytest.approx(0.25)

    def test_schema_version_gate(self, tmp_path):
        path = write_result(str(tmp_path), _result())
        text = (tmp_path / "BENCH_peak_detection.json").read_text()
        bumped = text.replace(
            f'"schema_version": {SCHEMA_VERSION}',
            f'"schema_version": {SCHEMA_VERSION + 1}',
        )
        (tmp_path / "BENCH_peak_detection.json").write_text(bumped)
        with pytest.raises(ValueError):
            load_result(path)

    def test_load_results_directory(self, tmp_path):
        write_result(str(tmp_path), _result("a"))
        write_result(str(tmp_path), _result("b"))
        (tmp_path / "notes.txt").write_text("ignored")
        assert sorted(load_results(str(tmp_path))) == ["a", "b"]
        assert load_results(str(tmp_path / "missing")) == {}


class TestCompare:
    def test_regression_detected(self):
        rows = compare_results(
            {"x": _result("x", normalized=0.70)},
            {"x": _result("x", normalized=1.00)},
            max_regress=0.25,
        )
        (row,) = rows
        assert row.regressed and row.speedup == pytest.approx(0.70)

    def test_within_budget_passes(self):
        (row,) = compare_results(
            {"x": _result("x", normalized=0.80)},
            {"x": _result("x", normalized=1.00)},
            max_regress=0.25,
        )
        assert not row.regressed

    def test_one_sided_benchmarks_never_fail(self):
        rows = compare_results(
            {"new": _result("new")},
            {"old": _result("old")},
        )
        assert {r.name: r.note for r in rows} == {
            "new": "no committed baseline",
            "old": "missing from current run",
        }
        assert not any(r.regressed for r in rows)

    def test_quick_mismatch_noted(self):
        (row,) = compare_results(
            {"x": _result("x", quick=True)},
            {"x": _result("x", quick=False)},
        )
        assert "quick" in row.note

    def test_render_mentions_regression(self):
        rows = compare_results(
            {"x": _result("x", normalized=0.5)},
            {"x": _result("x", normalized=1.0)},
        )
        table = render_comparison(rows, 0.25)
        assert "REGRESSED" in table


class TestRunner:
    def _tiny_bench(self, equivalence=None):
        def setup(ctx):
            return np.arange(4096, dtype=np.float64)

        def run(workload, ctx):
            np.cumsum(workload * workload)
            return workload.size

        return Benchmark(name="tiny", description="tiny", setup=setup,
                         run=run, equivalence=equivalence, tags=("test",))

    def test_run_one_produces_sane_result(self):
        obs = Observability()
        runner = BenchRunner(BenchOptions(repeats=3, warmup=1, quick=True),
                             obs=obs)
        result = runner.run_one(self._tiny_bench(), calibration_sps=1e9)
        assert result.name == "tiny"
        assert result.n_samples == 4096
        assert len(result.seconds) == 3
        assert result.samples_per_second > 0
        assert result.normalized == pytest.approx(
            result.samples_per_second / 1e9
        )
        assert not result.equivalence_checked
        gauge = obs.gauge("rfdump_bench_samples_per_second", bench="tiny")
        assert gauge.value == result.samples_per_second

    def test_equivalence_hook_runs_before_timing(self):
        calls = []

        def equivalence(workload, ctx):
            calls.append(len(workload))
            return {"checked": True}

        runner = BenchRunner(BenchOptions(repeats=1, warmup=0))
        result = runner.run_one(self._tiny_bench(equivalence),
                                calibration_sps=1e9)
        assert calls == [4096]
        assert result.equivalence_checked
        assert result.meta["equivalence"] == {"checked": True}

    def test_equivalence_failure_aborts(self):
        def equivalence(workload, ctx):
            raise AssertionError("kernels diverged")

        runner = BenchRunner(BenchOptions(repeats=1, warmup=0))
        with pytest.raises(AssertionError):
            runner.run_one(self._tiny_bench(equivalence), calibration_sps=1e9)

    def test_bad_options_rejected(self):
        with pytest.raises(ValueError):
            BenchOptions(repeats=0)
        with pytest.raises(ValueError):
            BenchOptions(warmup=-1)


def test_calibrate_is_positive_and_repeatable():
    assert calibrate(repeats=3) > 0


class TestCli:
    def test_list_names_all_benchmarks(self, capsys):
        assert rfbench.main(["list"]) == 0
        out = capsys.readouterr().out
        for name in ("peak_detection", "energy_features", "fft_spectrogram",
                     "phase_features", "pipeline_mix"):
            assert name in out

    def test_compare_gate(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        write_result(str(base), _result("x", normalized=1.0))
        write_result(str(cur), _result("x", normalized=0.5))
        code = rfbench.main([
            "compare", "--baseline", str(base), "--current", str(cur),
        ])
        assert code == 1
        assert "REGRESSED" in capsys.readouterr().out

    def test_compare_require_speedup(self, tmp_path, capsys):
        base = tmp_path / "base"
        cur = tmp_path / "cur"
        write_result(str(base), _result("x", normalized=1.0))
        write_result(str(cur), _result("x", normalized=2.5))
        ok = rfbench.main([
            "compare", "--baseline", str(base), "--current", str(cur),
            "--require-speedup", "x:2.0",
        ])
        assert ok == 0
        capsys.readouterr()
        fail = rfbench.main([
            "compare", "--baseline", str(base), "--current", str(cur),
            "--require-speedup", "x:3.0",
        ])
        assert fail == 1

    def test_compare_missing_dirs(self, tmp_path):
        code = rfbench.main([
            "compare", "--baseline", str(tmp_path / "none"),
            "--current", str(tmp_path / "none"),
        ])
        assert code == 2

    def test_committed_baselines_load(self):
        results = load_results("benchmarks/baselines")
        assert "peak_detection" in results
        assert results["peak_detection"].equivalence_checked
        reference = load_results("benchmarks/baselines/reference")
        assert reference["peak_detection"].impl == "reference"
