"""Tests for repro.core.peak_detector."""

import numpy as np
import pytest

from repro.core.peak_detector import PeakDetector, PeakDetectorConfig
from repro.dsp.samples import SampleBuffer
from repro.util.timebase import Timebase


def _trace(bursts, n=40000, noise=1.0, seed=0, amp=10.0):
    """Noise trace with rectangular bursts at given (start, end) samples."""
    rng = np.random.default_rng(seed)
    x = np.sqrt(noise / 2) * (
        rng.normal(size=n) + 1j * rng.normal(size=n)
    )
    for start, end in bursts:
        x[start:end] += amp
    return SampleBuffer(x.astype(np.complex64), Timebase(8e6))


class TestConfig:
    def test_defaults_match_paper(self):
        cfg = PeakDetectorConfig()
        assert cfg.chunk_samples == 200  # 25 us
        assert cfg.energy_window == 20  # 2.5 us
        assert cfg.threshold_db == 4.0

    def test_rejects_window_larger_than_chunk(self):
        with pytest.raises(ValueError):
            PeakDetectorConfig(chunk_samples=10, energy_window=20)

    def test_rejects_nonpositive(self):
        with pytest.raises(ValueError):
            PeakDetectorConfig(chunk_samples=0)


class TestDetection:
    def test_finds_single_burst(self):
        buf = _trace([(10000, 14000)])
        result = PeakDetector().detect(buf)
        assert len(result.history) == 1
        peak = result.history[0]
        assert abs(peak.start_sample - 10000) < 40
        assert abs(peak.end_sample - 14000) < 40

    def test_finds_multiple_bursts(self):
        buf = _trace([(5000, 7000), (15000, 16000), (30000, 33000)])
        result = PeakDetector().detect(buf)
        assert len(result.history) == 3

    def test_idle_trace_no_peaks(self):
        buf = _trace([])
        result = PeakDetector().detect(buf)
        assert len(result.history) == 0

    def test_noise_floor_estimate(self):
        buf = _trace([(5000, 9000)], noise=2.0)
        result = PeakDetector().detect(buf)
        assert result.noise_floor == pytest.approx(2.0, rel=0.2)

    def test_explicit_noise_floor_used(self):
        buf = _trace([(5000, 9000)])
        result = PeakDetector().detect(buf, noise_floor=0.5)
        assert result.noise_floor == 0.5

    def test_short_gap_does_not_split(self):
        # a 15-sample dropout inside a burst must not split the peak
        buf = _trace([(10000, 12000), (12015, 14000)])
        result = PeakDetector().detect(buf)
        assert len(result.history) == 1

    def test_long_gap_splits(self):
        buf = _trace([(10000, 12000), (12200, 14000)])
        result = PeakDetector().detect(buf)
        assert len(result.history) == 2

    def test_noise_spike_rejected(self):
        buf = _trace([(10000, 10008)])  # 1 us spike < min_length
        result = PeakDetector().detect(buf)
        assert len(result.history) == 0

    def test_peak_powers(self):
        buf = _trace([(10000, 14000)], amp=10.0)
        peak = PeakDetector().detect(buf).history[0]
        assert peak.mean_power == pytest.approx(100.0, rel=0.15)
        assert peak.peak_power >= peak.mean_power

    def test_weak_burst_below_threshold_missed(self):
        # 4 dB threshold: a burst at -3 dB SNR must be invisible
        buf = _trace([(10000, 14000)], amp=np.sqrt(0.5))
        result = PeakDetector().detect(buf, noise_floor=1.0)
        assert len(result.history) == 0

    def test_marginal_burst_fragments_not_full_peak(self):
        # right at the threshold, the detector may emit fragments but must
        # not report the burst as one contiguous peak
        buf = _trace([(10000, 14000)], amp=np.sqrt(1.26))
        result = PeakDetector().detect(buf, noise_floor=1.0)
        assert all(p.length < 2000 for p in result.history)

    def test_absolute_sample_indexing(self):
        buf = _trace([(10000, 12000)])
        shifted = SampleBuffer(buf.samples, buf.timebase, start_sample=50000)
        result = PeakDetector().detect(shifted)
        assert abs(result.history[0].start_sample - 60000) < 40


class TestChunkMetadata:
    def test_chunk_count(self):
        buf = _trace([], n=4000)
        result = PeakDetector().detect(buf)
        assert len(result.chunks) == 20

    def test_active_chunks_flagged(self):
        buf = _trace([(2000, 2600)], n=4000)
        result = PeakDetector().detect(buf)
        active = [c.active for c in result.chunks]
        assert active[10] and active[12]
        assert not active[0]

    def test_peak_indices_attached(self):
        buf = _trace([(2000, 2600)], n=4000)
        result = PeakDetector().detect(buf)
        assert result.chunks[10].peak_indices == [0]
        assert result.chunks[0].peak_indices == []
        assert result.chunks[10].history is result.history

    def test_peak_spanning_chunks(self):
        buf = _trace([(1000, 3000)], n=4000)
        result = PeakDetector().detect(buf)
        covered = [c for c in result.chunks if c.n_peaks > 0]
        # chunks 5..14, plus possibly one more from the averaging tail
        assert 10 <= len(covered) <= 11
