"""Tests for the public repro.core.report merge helpers."""

from repro.analysis.decoders import PacketRecord
from repro.core import (
    classification_key,
    merge_classifications,
    merge_packets,
    packet_key,
)
from repro.core.detectors.base import Classification
from repro.core.metadata import Peak


def _packet(start, end=None, protocol="wifi", decoder="wifi", ok=True,
            channel=None, payload_size=10):
    return PacketRecord(
        protocol=protocol, start_sample=start,
        end_sample=end if end is not None else start + 100,
        ok=ok, decoder=decoder, payload_size=payload_size, channel=channel,
    )


def _classification(start, protocol="wifi", detector="timing",
                    confidence=0.9):
    peak = Peak(start_sample=start, end_sample=start + 50,
                mean_power=1.0, peak_power=1.5)
    return Classification(peak=peak, protocol=protocol, detector=detector,
                         confidence=confidence)


class TestKeys:
    def test_packet_key_identity(self):
        assert packet_key(_packet(100)) == packet_key(_packet(100))
        assert packet_key(_packet(100)) != packet_key(_packet(200))
        assert packet_key(_packet(100)) != packet_key(
            _packet(100, protocol="bluetooth", decoder="bluetooth"))

    def test_classification_key_identity(self):
        a = _classification(100)
        b = _classification(100, confidence=0.1)  # confidence not identity
        assert classification_key(a) == classification_key(b)
        assert classification_key(a) != classification_key(
            _classification(100, detector="phase"))


class TestMergePackets:
    def test_dedup_across_monitors(self):
        shared = _packet(500)
        merged = merge_packets([[_packet(100), shared], [shared, _packet(900)]])
        assert [p.start_sample for p in merged] == [100, 500, 900]

    def test_first_copy_wins(self):
        first = _packet(500, payload_size=11)
        second = _packet(500, payload_size=99)  # same key, later list
        merged = merge_packets([[first], [second]])
        assert merged == [first]
        assert merged[0].payload_size == 11

    def test_sorted_by_position(self):
        merged = merge_packets([[_packet(900)], [_packet(100)], [_packet(500)]])
        assert [p.start_sample for p in merged] == [100, 500, 900]

    def test_empty_inputs(self):
        assert merge_packets([]) == []
        assert merge_packets([[], []]) == []

    def test_distinct_channels_both_kept(self):
        merged = merge_packets([[_packet(100, channel=1)],
                                [_packet(100, channel=6)]])
        assert len(merged) == 2


class TestMergeClassifications:
    def test_replicated_detection_collapses(self):
        # replicated detection: every shard sees the same classifications
        copies = [[_classification(100), _classification(300)]
                  for _ in range(3)]
        merged = merge_classifications(copies)
        assert [c.peak.start_sample for c in merged] == [100, 300]

    def test_order_deterministic(self):
        merged = merge_classifications([
            [_classification(300, detector="phase")],
            [_classification(100), _classification(300)],
        ])
        assert [(c.peak.start_sample, c.detector) for c in merged] == [
            (100, "timing"), (300, "phase"), (300, "timing"),
        ]


class TestBrokerUsesPublicHelpers:
    def test_broker_imports_are_the_same_objects(self):
        from repro.core.shards import broker as broker_mod
        assert broker_mod.merge_packets is merge_packets
        assert broker_mod.merge_classifications is merge_classifications
