"""Tests for repro.phy.dsss."""

import numpy as np
import pytest

from repro.phy import dsss
from repro.phy.barker import symbol_template


class TestSymbolMaps:
    def test_dbpsk_flip_semantics(self):
        symbols = dsss.dbpsk_symbols(np.array([0, 1, 1, 0], dtype=np.uint8))
        jumps = np.angle(symbols[1:] * np.conj(symbols[:-1]))
        bits = dsss.dbpsk_bits_from_jumps(jumps)
        assert bits.tolist() == [1, 1, 0]

    def test_dbpsk_unit_magnitude(self):
        symbols = dsss.dbpsk_symbols(np.random.default_rng(0).integers(0, 2, 100))
        assert np.allclose(np.abs(symbols), 1.0)

    def test_dqpsk_round_trip(self):
        rng = np.random.default_rng(1)
        bits = rng.integers(0, 2, 200).astype(np.uint8)
        symbols = dsss.dqpsk_symbols(bits)
        jumps = np.angle(symbols[1:] * np.conj(symbols[:-1]))
        first_jump = np.angle(symbols[0])  # initial_phase=0 encodes dibit 0
        recovered = dsss.dqpsk_bits_from_jumps(
            np.concatenate([[first_jump], jumps])
        )
        assert np.array_equal(recovered, bits)

    def test_dqpsk_rejects_odd_bits(self):
        with pytest.raises(ValueError):
            dsss.dqpsk_symbols(np.ones(3, dtype=np.uint8))

    def test_initial_phase_continuity(self):
        symbols = dsss.dbpsk_symbols(np.array([0], dtype=np.uint8),
                                     initial_phase=np.pi / 3)
        assert np.angle(symbols[0]) == pytest.approx(np.pi / 3)


class TestWaveform:
    def test_length(self):
        symbols = dsss.dbpsk_symbols(np.zeros(10, dtype=np.uint8))
        wave = dsss.symbols_to_waveform(symbols, 8e6)
        assert wave.size == 80  # 10 us at 8 Msps

    def test_unit_envelope(self):
        symbols = dsss.dbpsk_symbols(np.ones(20, dtype=np.uint8))
        wave = dsss.symbols_to_waveform(symbols, 8e6)
        assert np.allclose(np.abs(wave), 1.0, atol=1e-6)

    def test_modulate_helpers(self):
        bits = np.ones(8, dtype=np.uint8)
        assert dsss.modulate_1mbps(bits, 8e6).size == 64
        assert dsss.modulate_2mbps(bits, 8e6).size == 32


class TestReceive:
    def test_correlate_recovers_symbols(self):
        rng = np.random.default_rng(2)
        bits = rng.integers(0, 2, 64).astype(np.uint8)
        symbols = dsss.dbpsk_symbols(bits)
        wave = dsss.symbols_to_waveform(symbols, 8e6)
        template = symbol_template(8e6)
        corr = dsss.correlate_symbols(wave, template, 64)
        jumps = dsss.differential_decisions(corr)
        recovered = dsss.dbpsk_bits_from_jumps(jumps)
        assert np.array_equal(recovered, bits[1:])

    def test_correlate_truncates_gracefully(self):
        wave = np.ones(20, dtype=np.complex64)
        template = symbol_template(8e6)
        corr = dsss.correlate_symbols(wave, template, 10)
        assert corr.size == 2

    def test_differential_short_input(self):
        assert dsss.differential_decisions(np.ones(1, dtype=complex)).size == 0

    def test_noise_tolerance(self):
        rng = np.random.default_rng(3)
        bits = rng.integers(0, 2, 128).astype(np.uint8)
        wave = dsss.modulate_1mbps(bits, 8e6)
        noisy = wave + 0.3 * (
            rng.normal(size=wave.size) + 1j * rng.normal(size=wave.size)
        ).astype(np.complex64)
        corr = dsss.correlate_symbols(noisy, symbol_template(8e6), 128)
        recovered = dsss.dbpsk_bits_from_jumps(dsss.differential_decisions(corr))
        assert np.array_equal(recovered, bits[1:])
