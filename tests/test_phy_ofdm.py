"""Tests for repro.phy.ofdm (the future-work 802.11g-style PHY)."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.phy.ofdm import CP_LEN, FFT_SIZE, OfdmModem, SYMBOL_LEN


@pytest.fixture(scope="module")
def modem():
    return OfdmModem(8e6)


def _embed(wave, lead=300, tail=300, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    rx[lead : lead + wave.size] += wave
    return rx


class TestModulate:
    def test_symbol_geometry(self, modem):
        wave = modem.modulate(b"")
        # 2 training symbols + 1 data symbol (4 CRC bytes pad to one symbol)
        assert wave.size == 3 * SYMBOL_LEN

    def test_unit_power(self, modem):
        wave = modem.modulate(bytes(range(100)))
        assert np.mean(np.abs(wave) ** 2) == pytest.approx(1.0, rel=0.1)

    def test_cyclic_prefix_is_tail_copy(self, modem):
        wave = modem.modulate(b"cp-check")
        for s in range(wave.size // SYMBOL_LEN):
            symbol = wave[s * SYMBOL_LEN : (s + 1) * SYMBOL_LEN]
            assert np.allclose(symbol[:CP_LEN], symbol[-CP_LEN:], atol=1e-5)

    def test_airtime_matches_length(self, modem):
        wave = modem.modulate(bytes(50))
        assert wave.size / 8e6 == pytest.approx(modem.airtime(50))


class TestDemodulate:
    def test_round_trip(self, modem):
        payload = bytes(range(200))
        packet = modem.demodulate(_embed(modem.modulate(payload)))
        assert packet.payload == payload
        assert packet.crc_ok

    def test_start_sample(self, modem):
        packet = modem.demodulate(_embed(modem.modulate(b"where"), lead=641))
        assert abs(packet.start_sample - 641) <= SYMBOL_LEN

    def test_empty_payload(self, modem):
        packet = modem.demodulate(_embed(modem.modulate(b""), seed=2))
        assert packet.payload == b""

    def test_channel_rotation_tolerated(self, modem):
        wave = modem.modulate(b"rotated") * np.exp(1j * 0.9)
        packet = modem.demodulate(_embed(wave.astype(np.complex64), seed=3))
        assert packet.payload == b"rotated"

    def test_noise_only_raises(self, modem, rng):
        noise = (rng.normal(size=20000) + 1j * rng.normal(size=20000)).astype(
            np.complex64
        )
        with pytest.raises(DecodeError):
            modem.demodulate(noise)

    def test_truncated_raises(self, modem):
        wave = modem.modulate(bytes(100))
        with pytest.raises(DecodeError):
            modem.demodulate(_embed(wave[: wave.size // 2], tail=0, seed=4))

    def test_try_demodulate(self, modem):
        assert modem.try_demodulate(np.ones(2000, dtype=np.complex64)) is None


class TestCpMetric:
    def test_high_for_ofdm(self, modem):
        wave = modem.modulate(bytes(300))
        _, metric = OfdmModem.cp_metric(wave)
        assert metric > 0.9

    def test_alignment_found(self, modem):
        wave = modem.modulate(bytes(300))
        shifted = np.concatenate([wave[37:], wave[:37]])
        align, metric = OfdmModem.cp_metric(shifted)
        assert metric > 0.9

    def test_low_for_single_carrier(self, rng):
        from repro.phy.gfsk import GfskModem

        wave = GfskModem(8e6).modulate(rng.integers(0, 2, 1500).astype(np.uint8))
        _, metric = OfdmModem.cp_metric(wave)
        assert metric < 0.35

    def test_low_for_noise(self, rng):
        noise = (rng.normal(size=8000) + 1j * rng.normal(size=8000))
        _, metric = OfdmModem.cp_metric(noise.astype(np.complex64))
        assert metric < 0.35

    def test_short_input(self):
        assert OfdmModem.cp_metric(np.ones(50, dtype=np.complex64))[1] == 0.0
