"""Tests for the stream-fusion compiler (repro.flowgraph.fusion).

The contract under test is byte-identity: a compiled graph must produce
the same items, bit for bit, and the same per-block counters as the
unfused interpreter — over hand-built chains, over randomly generated
linear chains from the standard block vocabulary, and over every
emulator preset's front-end run.
"""

import numpy as np
import pytest

from repro.dsp.samples import SampleBuffer
from repro.flowgraph import (
    Block,
    BufferChunkSource,
    ChunkMeanBlock,
    ClampBlock,
    CollectSink,
    DcRemovalBlock,
    FlowGraph,
    FusedBlock,
    GainBlock,
    MovingAverageBlock,
    PowerBlock,
    build_frontend_graph,
    compile_graph,
    find_chains,
)
from repro.obs import Observability
from repro.util.timebase import Timebase


def make_buffer(n, seed=7, sample_rate=2e6):
    rng = np.random.default_rng(seed)
    iq = (rng.standard_normal(n) + 1j * rng.standard_normal(n))
    return SampleBuffer(iq.astype(np.complex64), Timebase(sample_rate), 0)


def run_frontend(buffer, fused, obs=None, **kwargs):
    graph, sink = build_frontend_graph(buffer, obs=obs, **kwargs)
    graph.run(fused=fused)
    return sink.items


def assert_items_identical(unfused, fused):
    assert len(unfused) == len(fused)
    for (s_ref, d_ref), (s_fused, d_fused) in zip(unfused, fused):
        assert s_ref == s_fused
        assert d_ref.dtype == d_fused.dtype
        assert d_ref.tobytes() == d_fused.tobytes()


def flowgraph_counters(obs):
    return {
        m.key: m.value
        for m in obs.registry.collect()
        if m.name in ("flowgraph_items_total", "flowgraph_samples_total")
    }


class TestChainFinding:
    def _frontend(self, n=1000):
        graph, sink = build_frontend_graph(make_buffer(n))
        return graph, sink

    def test_frontend_chain_found(self):
        graph, sink = self._frontend()
        chains = find_chains(graph)
        assert len(chains) == 1
        # every non-source block, sink included, lands in the one chain
        assert len(chains[0]) == len(graph.blocks) - 1

    def test_source_never_in_chain(self):
        graph, _ = self._frontend()
        (chain,) = find_chains(graph)
        assert all(b.fusable for b in chain)

    def test_fan_out_breaks_chain(self):
        buffer = make_buffer(500)
        graph = FlowGraph()
        src = BufferChunkSource(buffer, 100)
        power = PowerBlock()
        a, b = CollectSink("a"), CollectSink("b")
        graph.connect(src, power)
        graph.connect(power, a)
        graph.connect(power, b)
        assert find_chains(graph) == []
        assert compile_graph(graph) is graph

    def test_fan_in_breaks_chain(self):
        buffer = make_buffer(500)
        graph = FlowGraph()
        src_a = BufferChunkSource(buffer, 100, name="src-a")
        src_b = BufferChunkSource(buffer, 100, name="src-b")
        power = PowerBlock()
        clamp = ClampBlock(0.0, 1e6)
        sink = CollectSink()
        graph.connect(src_a, power)
        graph.connect(src_b, power)
        graph.chain(power, clamp, sink)
        # power has two predecessors: it may head a chain but not be
        # absorbed into one through its input edge
        chains = find_chains(graph)
        assert [b.name for b in chains[0]] == [power.name, clamp.name, sink.name]

    def test_fusable_opt_out_splits_chain(self):
        buffer = make_buffer(500)
        graph = FlowGraph()
        power = PowerBlock()
        power.fusable = False
        graph.chain(BufferChunkSource(buffer, 100), GainBlock(2.0), power,
                    ClampBlock(0.0, 1e6), MovingAverageBlock(8), CollectSink())
        chains = find_chains(graph)
        assert power not in {b for chain in chains for b in chain}
        compiled = compile_graph(graph)
        assert compiled is not graph
        assert power in compiled.blocks

    def test_single_block_chain_not_fused(self):
        buffer = make_buffer(500)
        graph = FlowGraph()
        graph.chain(BufferChunkSource(buffer, 100), PowerBlock())
        # power's output port is unconnected -> invalid; wire to a
        # non-fusable sink instead to isolate the single fusable block
        sink = CollectSink()
        sink.fusable = False
        graph.connect(graph.blocks[-1], sink)
        assert find_chains(graph) == []
        assert compile_graph(graph) is graph


class TestFusedEquivalence:
    @pytest.mark.parametrize("n", [1, 200, 399, 100123])
    def test_frontend_byte_identical(self, n):
        buffer = make_buffer(n)
        unfused = run_frontend(buffer, fused=False, gain=1.5, agc=0.8)
        fused = run_frontend(buffer, fused=True, gain=1.5, agc=0.8)
        assert_items_identical(unfused, fused)

    def test_empty_buffer(self):
        buffer = make_buffer(0)
        unfused = run_frontend(buffer, fused=False)
        fused = run_frontend(buffer, fused=True)
        assert unfused == fused == []

    def test_counters_equal(self):
        buffer = make_buffer(5000)
        obs_ref, obs_fused = Observability(), Observability()
        unfused = run_frontend(buffer, fused=False, obs=obs_ref)
        fused = run_frontend(buffer, fused=True, obs=obs_fused)
        assert_items_identical(unfused, fused)
        assert flowgraph_counters(obs_ref) == flowgraph_counters(obs_fused)

    def test_fusion_counters_recorded(self):
        obs = Observability()
        run_frontend(make_buffer(1000), fused=True, obs=obs)
        assert obs.registry.value("rfdump_fusion_chains_total") == 1
        # gain, dc, agc, power, clamp, ma-short, ma-long, chunk-mean, sink
        assert obs.registry.value("rfdump_fusion_blocks_fused_total") == 9

    def test_fused_flush_span_names_members(self):
        obs = Observability()
        buffer = make_buffer(1000)
        graph, _ = build_frontend_graph(buffer, obs=obs)
        graph.run(fused=True)
        spans = [s for s in obs.tracer.spans if s.name == "fused_flush"]
        assert spans
        assert "chunk-mean" in spans[0].attrs["blocks"]

    def test_compiled_graph_reusable_across_runs(self):
        buffer = make_buffer(3000)
        graph, sink = build_frontend_graph(buffer)
        graph.run(fused=True)
        first = list(sink.items)
        graph.run(fused=True)
        assert_items_identical(first, sink.items)

    def test_mixed_dtype_chain_fuses(self):
        # complex64 head, float64 tail: the PowerBlock dtype boundary
        # sits inside one kernel run
        buffer = make_buffer(777)
        graph = FlowGraph()
        sink = CollectSink()
        graph.chain(BufferChunkSource(buffer, 64), GainBlock(0.5),
                    PowerBlock(), MovingAverageBlock(16), sink)
        compiled = compile_graph(graph)
        assert compiled is not graph
        graph.run()
        unfused = list(sink.items)
        graph.run(fused=True)
        assert_items_identical(unfused, sink.items)


# the standard fusable vocabulary, as (factory, needs_power_input) pairs:
# blocks after a PowerBlock see float64 power samples, blocks before see
# complex64 IQ — the generator keeps the dtype handshake valid
_IQ_STAGES = [
    lambda i: GainBlock(1.0 + 0.25 * i, name=f"gain-{i}"),
    lambda i: DcRemovalBlock(name=f"dc-{i}"),
]
_POWER_STAGES = [
    lambda i: GainBlock(0.5 + 0.25 * i, name=f"pgain-{i}"),
    lambda i: ClampBlock(0.0, 10.0 ** (3 + i), name=f"clamp-{i}"),
    lambda i: MovingAverageBlock(4 + 3 * i, name=f"ma-{i}"),
    lambda i: ChunkMeanBlock(10 + 5 * i, name=f"mean-{i}"),
]


def random_linear_chain(rng):
    """A random valid linear chain: IQ stages, PowerBlock, power stages."""
    stages = []
    for i in range(rng.integers(0, 3)):
        stages.append(_IQ_STAGES[rng.integers(len(_IQ_STAGES))](i))
    stages.append(PowerBlock())
    for i in range(rng.integers(1, 4)):
        stages.append(_POWER_STAGES[rng.integers(len(_POWER_STAGES))](i))
    return stages


class TestPropertyEquivalence:
    @pytest.mark.parametrize("seed", range(8))
    def test_random_chain_byte_identical_and_counter_equal(self, seed):
        rng = np.random.default_rng(seed)
        n = int(rng.integers(1, 5000))
        chunk = int(rng.integers(16, 300))
        buffer = make_buffer(n, seed=seed + 100)
        outputs, counters = [], []
        for fused in (False, True):
            obs = Observability()
            graph = FlowGraph(obs=obs)
            sink = CollectSink()
            rng_chain = np.random.default_rng(seed)  # same chain both times
            graph.chain(BufferChunkSource(buffer, chunk),
                        *random_linear_chain(rng_chain), sink)
            graph.run(fused=fused)
            outputs.append(sink.items)
            counters.append(flowgraph_counters(obs))
        assert_items_identical(outputs[0], outputs[1])
        assert counters[0] == counters[1]

    @pytest.mark.parametrize("preset", ["wifi", "bluetooth", "mix", "kitchen"])
    def test_presets_byte_identical(self, preset):
        from repro.bench.scenarios import preset_buffer

        buffer = preset_buffer(preset, 0.01, seed=3)
        unfused = run_frontend(buffer, fused=False, gain=1.5, agc=0.8)
        fused = run_frontend(buffer, fused=True, gain=1.5, agc=0.8)
        assert_items_identical(unfused, fused)


class TestCompileMechanics:
    def test_check_cache_invalidated_by_connect(self):
        buffer = make_buffer(500)
        graph = FlowGraph()
        power = PowerBlock()
        graph.chain(BufferChunkSource(buffer, 100), power, CollectSink())
        graph.check()
        assert graph._validated
        extra = CollectSink("extra")
        graph.connect(power, extra)
        assert not graph._validated
        graph.check()
        assert graph._validated

    def test_compile_cache_invalidated_by_connect(self):
        buffer = make_buffer(500)
        graph, _ = build_frontend_graph(buffer)
        first = graph.compile()
        assert graph.compile() is first
        graph.connect(graph.blocks[1], CollectSink("tap"))
        assert graph.compile() is not first

    def test_fused_block_requires_two_members(self):
        with pytest.raises(ValueError):
            FusedBlock([PowerBlock()])

    def test_fused_block_name_carries_members(self):
        fused = FusedBlock([PowerBlock(), MovingAverageBlock(8, "ma")])
        assert fused.name == "fused(power+ma)"
        assert not fused.fusable

    def test_compiled_graph_passes_check(self):
        graph, _ = build_frontend_graph(make_buffer(500))
        compiled = graph.compile()
        assert compiled is not graph
        compiled.check()

    def test_member_state_observable_after_fused_run(self):
        # the sink absorbed into the chain is the same object the caller
        # holds: fusion must not re-route its items elsewhere
        buffer = make_buffer(1000)
        graph, sink = build_frontend_graph(buffer)
        graph.run(fused=True)
        assert sink.items
        assert isinstance(sink.items[0], tuple)


class TestFlowGraphMonitor:
    def test_fused_and_unfused_reports_agree(self):
        from repro.core.config import MonitorConfig
        from repro.core.monitor import make_monitor

        buffer = make_buffer(40000, sample_rate=8e6)
        reports = []
        for fused in (False, True):
            with make_monitor("flowgraph", MonitorConfig(sample_rate=8e6),
                              fused=fused) as monitor:
                reports.append(monitor.process(buffer))
        ref, fused_report = reports
        assert [repr(p) for p in ref.packets] == \
            [repr(p) for p in fused_report.packets]
        assert [repr(c) for c in ref.classifications] == \
            [repr(c) for c in fused_report.classifications]
        assert ref.total_samples == fused_report.total_samples

    def test_cli_rejects_fuse_without_flowgraph_monitor(self, tmp_path):
        from repro.tools.rfdump import main
        from repro.trace.io import write_trace

        trace = str(tmp_path / "t.iq")
        write_trace(trace, make_buffer(2000, sample_rate=8e6))
        assert main([trace, "--fuse"]) == 2
        assert main([trace, "--monitor", "flowgraph", "--fuse",
                     "--summary"]) == 0


class TestSpeedupMeasurement:
    def test_measure_speedup_interleaves_in_process(self):
        from repro.bench import BenchOptions, get_benchmark, measure_speedup

        bench = get_benchmark("pipeline_mix_fused")
        m = measure_speedup(bench, BenchOptions(repeats=2, warmup=1,
                                                quick=True))
        assert m.name == "pipeline_mix_fused"
        assert len(m.reference_seconds) == len(m.current_seconds) == 2
        assert m.factor > 0
