"""Engine-level tests: baseline workflow, CLI behavior, repo cleanliness."""

import json
import os
import textwrap

import pytest

from repro.lint import (
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    package_rel_path,
    write_baseline,
)
from repro.tools import rflint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


class TestPathNormalization:
    @pytest.mark.parametrize("path,rel", [
        ("src/repro/phy/dsss.py", "repro/phy/dsss.py"),
        ("/ckpt/x/src/repro/obs/tracing.py", "repro/obs/tracing.py"),
        ("repro/core/parallel.py", "repro/core/parallel.py"),
        ("elsewhere/module.py", "elsewhere/module.py"),
        # a checkout directory itself named "repro" must not win over
        # the package root: prefer the "repro" preceded by "src", else
        # the last occurrence
        ("/home/x/repro/src/repro/phy/a.py", "repro/phy/a.py"),
        ("/home/x/repro/repro/phy/a.py", "repro/phy/a.py"),
        ("/home/x/repro/tests/test_a.py", "repro/tests/test_a.py"),
    ])
    def test_package_rel_path(self, path, rel):
        assert package_rel_path(path) == rel


class TestRepoIsClean:
    def test_src_lints_clean_modulo_baseline(self):
        """The acceptance gate: rflint over src/ has no active findings."""
        findings = lint_paths([SRC])
        active, grandfathered = apply_baseline(findings, load_baseline(BASELINE))
        assert active == [], "\n" + "\n".join(f.format() for f in active)
        # the baseline is tight: every grandfathered budget is spent
        assert len(grandfathered) == sum(load_baseline(BASELINE).values())


class TestBaseline:
    def _findings(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "phy" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(textwrap.dedent(
            """
            import time
            a = time.time()
            b = time.time()
            """
        ))
        return lint_paths([str(tmp_path)])

    def test_roundtrip_grandfathers_everything(self, tmp_path):
        findings = self._findings(tmp_path)
        assert len(findings) == 2
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline_file))
        allowed = load_baseline(str(baseline_file))
        active, grandfathered = apply_baseline(findings, allowed)
        assert active == [] and len(grandfathered) == 2

    def test_excess_findings_stay_active(self, tmp_path):
        findings = self._findings(tmp_path)
        allowed = {("repro/phy/mod.py", "RFD101"): 1}
        active, grandfathered = apply_baseline(findings, allowed)
        assert len(active) == 1 and len(grandfathered) == 1

    def test_baseline_entry_does_not_leak_across_rules(self, tmp_path):
        findings = self._findings(tmp_path)
        allowed = {("repro/phy/mod.py", "RFD501"): 5}
        active, _ = apply_baseline(findings, allowed)
        assert len(active) == 2

    def test_unknown_version_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))


class TestCli:
    def _write_violation(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "phy" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\nstamp = time.time()\n")
        return mod

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "src" / "repro" / "phy" / "ok.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\nZERO = np.complex64(0)\n")
        assert rflint.main([str(tmp_path), "--no-baseline"]) == 0

    def test_violation_exits_nonzero_naming_rule_file_line(self, tmp_path, capsys):
        mod = self._write_violation(tmp_path)
        code = rflint.main([str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RFD101" in out
        assert f"{mod}:2:" in out

    def test_json_format(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        code = rflint.main([str(tmp_path), "--no-baseline", "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["counts"]["active"] == 1
        assert report["findings"][0]["rule"] == "RFD101"
        assert report["findings"][0]["rel"] == "repro/phy/mod.py"

    def test_json_out_writes_report_file(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        out_file = tmp_path / "report.json"
        rflint.main([str(tmp_path), "--no-baseline", "--json-out", str(out_file)])
        report = json.loads(out_file.read_text())
        assert report["counts"]["active"] == 1

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert rflint.main([
            str(tmp_path), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert rflint.main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out

    def test_select_and_ignore(self, tmp_path):
        self._write_violation(tmp_path)
        assert rflint.main(
            [str(tmp_path), "--no-baseline", "--select", "RFD501"]) == 0
        assert rflint.main(
            [str(tmp_path), "--no-baseline", "--ignore", "RFD101"]) == 0

    def test_list_rules(self, capsys):
        assert rflint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RFD101", "RFD102", "RFD103", "RFD201", "RFD202",
                        "RFD301", "RFD401", "RFD402", "RFD501"):
            assert rule_id in out

    def test_no_paths_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            rflint.main([])
        assert exc.value.code == 2


class TestNoqaSpans:
    def test_noqa_on_closing_line_covers_multiline_statement(self):
        findings = lint_source(textwrap.dedent(
            """
            import time
            stamp = time.time(
            )  # rfdump: noqa[RFD101]
            """
        ), path="src/repro/phy/mod.py")
        assert findings == []

    def test_noqa_on_first_line_covers_multiline_statement(self):
        findings = lint_source(textwrap.dedent(
            """
            import time
            stamp = time.time(  # rfdump: noqa[RFD101]
            )
            """
        ), path="src/repro/phy/mod.py")
        assert findings == []

    def test_noqa_on_def_line_does_not_silence_the_body(self):
        findings = lint_source(textwrap.dedent(
            """
            import time
            def f():  # rfdump: noqa[RFD101]
                return time.time()
            """
        ), path="src/repro/phy/mod.py")
        assert [f.rule for f in findings] == ["RFD101"]

    def test_noqa_for_another_rule_does_not_suppress(self):
        findings = lint_source(textwrap.dedent(
            """
            import time
            stamp = time.time(
            )  # rfdump: noqa[RFD501]
            """
        ), path="src/repro/phy/mod.py")
        assert [f.rule for f in findings] == ["RFD101"]


class TestStaleBaseline:
    def _tree_with_one_finding(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "phy" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\nstamp = time.time()\n")

    def _baseline(self, tmp_path, count, rel="repro/phy/mod.py",
                  rule="RFD101"):
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [{"path": rel, "rule": rule, "count": count,
                         "reason": "grandfathered at introduction"}],
        }))
        return baseline

    def test_overbudget_entry_fails_the_run(self, tmp_path, capsys):
        self._tree_with_one_finding(tmp_path)
        baseline = self._baseline(tmp_path, count=3)
        code = rflint.main([str(tmp_path), "--baseline", str(baseline)])
        out = capsys.readouterr().out
        assert code == 1
        assert "stale baseline entry" in out
        assert "allows 3 finding(s) but only 1 remain" in out

    def test_exact_budget_passes(self, tmp_path):
        self._tree_with_one_finding(tmp_path)
        baseline = self._baseline(tmp_path, count=1)
        assert rflint.main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_entry_for_unanalyzed_file_is_not_stale(self, tmp_path):
        self._tree_with_one_finding(tmp_path)
        baseline = tmp_path / "baseline.json"
        baseline.write_text(json.dumps({
            "version": 1,
            "entries": [
                {"path": "repro/phy/mod.py", "rule": "RFD101", "count": 1,
                 "reason": "grandfathered at introduction"},
                {"path": "repro/gone/elsewhere.py", "rule": "RFD101",
                 "count": 4, "reason": "file not part of this run"},
            ],
        }))
        assert rflint.main([str(tmp_path), "--baseline", str(baseline)]) == 0

    def test_entry_for_unselected_rule_is_not_stale(self, tmp_path):
        self._tree_with_one_finding(tmp_path)
        baseline = self._baseline(tmp_path, count=3)
        # RFD101 was not run at all, so its budget is unverifiable
        assert rflint.main([
            str(tmp_path), "--baseline", str(baseline),
            "--select", "RFD501",
        ]) == 0

    def test_stale_entries_reported_in_json(self, tmp_path, capsys):
        self._tree_with_one_finding(tmp_path)
        baseline = self._baseline(tmp_path, count=2)
        code = rflint.main([str(tmp_path), "--baseline", str(baseline),
                            "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["stale_baseline"] == [{
            "path": "repro/phy/mod.py", "rule": "RFD101",
            "allowed": 2, "actual": 1,
        }]


class TestBaselineReasons:
    def test_rfd7_entry_needs_a_reason_in_project_mode(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({
            "version": 1,
            "entries": [{"path": "repro/service/daemon.py", "rule": "RFD703",
                         "count": 1, "reason": "TODO: justify or fix"}],
        }))
        with pytest.raises(ValueError, match="needs a real 'reason'"):
            load_baseline(str(bad), require_reasons=True)
        # outside project mode the same file loads fine
        assert load_baseline(str(bad)) == {
            ("repro/service/daemon.py", "RFD703"): 1,
        }

    def test_cli_project_mode_rejects_unjustified_rfd7_entries(
            self, tmp_path, capsys):
        mod = tmp_path / "src" / "repro" / "phy" / "ok.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\nZERO = np.complex64(0)\n")
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({
            "version": 1,
            "entries": [{"path": "repro/svc/x.py", "rule": "RFD701",
                         "count": 1, "reason": ""}],
        }))
        code = rflint.main([str(tmp_path), "--project",
                            "--baseline", str(bad)])
        err = capsys.readouterr().err
        assert code == 2
        assert "invalid baseline" in err

    def test_non_rfd7_entries_never_need_reasons(self, tmp_path):
        fine = tmp_path / "baseline.json"
        fine.write_text(json.dumps({
            "version": 1,
            "entries": [{"path": "repro/phy/mod.py", "rule": "RFD101",
                         "count": 2}],
        }))
        allowed = load_baseline(str(fine), require_reasons=True)
        assert allowed == {("repro/phy/mod.py", "RFD101"): 2}


class TestFindingOrdering:
    def test_findings_sorted_by_location(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time
                def f(name: str = None):
                    return time.time()
                """
            ),
            path="src/repro/phy/mod.py",
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
