"""Engine-level tests: baseline workflow, CLI behavior, repo cleanliness."""

import json
import os
import textwrap

import pytest

from repro.lint import (
    apply_baseline,
    lint_paths,
    lint_source,
    load_baseline,
    package_rel_path,
    write_baseline,
)
from repro.tools import rflint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")


class TestPathNormalization:
    @pytest.mark.parametrize("path,rel", [
        ("src/repro/phy/dsss.py", "repro/phy/dsss.py"),
        ("/ckpt/x/src/repro/obs/tracing.py", "repro/obs/tracing.py"),
        ("repro/core/parallel.py", "repro/core/parallel.py"),
        ("elsewhere/module.py", "elsewhere/module.py"),
    ])
    def test_package_rel_path(self, path, rel):
        assert package_rel_path(path) == rel


class TestRepoIsClean:
    def test_src_lints_clean_modulo_baseline(self):
        """The acceptance gate: rflint over src/ has no active findings."""
        findings = lint_paths([SRC])
        active, grandfathered = apply_baseline(findings, load_baseline(BASELINE))
        assert active == [], "\n" + "\n".join(f.format() for f in active)
        # the baseline is tight: every grandfathered budget is spent
        assert len(grandfathered) == sum(load_baseline(BASELINE).values())


class TestBaseline:
    def _findings(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "phy" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text(textwrap.dedent(
            """
            import time
            a = time.time()
            b = time.time()
            """
        ))
        return lint_paths([str(tmp_path)])

    def test_roundtrip_grandfathers_everything(self, tmp_path):
        findings = self._findings(tmp_path)
        assert len(findings) == 2
        baseline_file = tmp_path / "baseline.json"
        write_baseline(findings, str(baseline_file))
        allowed = load_baseline(str(baseline_file))
        active, grandfathered = apply_baseline(findings, allowed)
        assert active == [] and len(grandfathered) == 2

    def test_excess_findings_stay_active(self, tmp_path):
        findings = self._findings(tmp_path)
        allowed = {("repro/phy/mod.py", "RFD101"): 1}
        active, grandfathered = apply_baseline(findings, allowed)
        assert len(active) == 1 and len(grandfathered) == 1

    def test_baseline_entry_does_not_leak_across_rules(self, tmp_path):
        findings = self._findings(tmp_path)
        allowed = {("repro/phy/mod.py", "RFD501"): 5}
        active, _ = apply_baseline(findings, allowed)
        assert len(active) == 2

    def test_unknown_version_rejected(self, tmp_path):
        bad = tmp_path / "baseline.json"
        bad.write_text(json.dumps({"version": 99, "entries": []}))
        with pytest.raises(ValueError):
            load_baseline(str(bad))


class TestCli:
    def _write_violation(self, tmp_path):
        mod = tmp_path / "src" / "repro" / "phy" / "mod.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import time\nstamp = time.time()\n")
        return mod

    def test_clean_tree_exits_zero(self, tmp_path, capsys):
        mod = tmp_path / "src" / "repro" / "phy" / "ok.py"
        mod.parent.mkdir(parents=True)
        mod.write_text("import numpy as np\nZERO = np.complex64(0)\n")
        assert rflint.main([str(tmp_path), "--no-baseline"]) == 0

    def test_violation_exits_nonzero_naming_rule_file_line(self, tmp_path, capsys):
        mod = self._write_violation(tmp_path)
        code = rflint.main([str(tmp_path), "--no-baseline"])
        out = capsys.readouterr().out
        assert code == 1
        assert "RFD101" in out
        assert f"{mod}:2:" in out

    def test_json_format(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        code = rflint.main([str(tmp_path), "--no-baseline", "--format", "json"])
        report = json.loads(capsys.readouterr().out)
        assert code == 1
        assert report["counts"]["active"] == 1
        assert report["findings"][0]["rule"] == "RFD101"
        assert report["findings"][0]["rel"] == "repro/phy/mod.py"

    def test_json_out_writes_report_file(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        out_file = tmp_path / "report.json"
        rflint.main([str(tmp_path), "--no-baseline", "--json-out", str(out_file)])
        report = json.loads(out_file.read_text())
        assert report["counts"]["active"] == 1

    def test_write_baseline_then_clean(self, tmp_path, capsys):
        self._write_violation(tmp_path)
        baseline = tmp_path / "baseline.json"
        assert rflint.main([
            str(tmp_path), "--baseline", str(baseline), "--write-baseline",
        ]) == 0
        assert rflint.main([str(tmp_path), "--baseline", str(baseline)]) == 0
        out = capsys.readouterr().out
        assert "grandfathered" in out

    def test_select_and_ignore(self, tmp_path):
        self._write_violation(tmp_path)
        assert rflint.main(
            [str(tmp_path), "--no-baseline", "--select", "RFD501"]) == 0
        assert rflint.main(
            [str(tmp_path), "--no-baseline", "--ignore", "RFD101"]) == 0

    def test_list_rules(self, capsys):
        assert rflint.main(["--list-rules"]) == 0
        out = capsys.readouterr().out
        for rule_id in ("RFD101", "RFD102", "RFD103", "RFD201", "RFD202",
                        "RFD301", "RFD401", "RFD402", "RFD501"):
            assert rule_id in out

    def test_no_paths_is_usage_error(self):
        with pytest.raises(SystemExit) as exc:
            rflint.main([])
        assert exc.value.code == 2


class TestFindingOrdering:
    def test_findings_sorted_by_location(self):
        findings = lint_source(
            textwrap.dedent(
                """
                import time
                def f(name: str = None):
                    return time.time()
                """
            ),
            path="src/repro/phy/mod.py",
        )
        assert [f.line for f in findings] == sorted(f.line for f in findings)
