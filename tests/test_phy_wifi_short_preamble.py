"""Tests for 802.11b short-preamble support."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.phy import plcp
from repro.phy.wifi import WifiDemodulator, WifiModulator
from repro.phy.wifi_mac import build_data_frame
from repro.util.bits import descramble_stream


def _embed(wave, lead=400, tail=300, noise=0.05, seed=0):
    rng = np.random.default_rng(seed)
    n = wave.size + lead + tail
    rx = noise * (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    rx[lead : lead + wave.size] += wave
    return rx


class TestShortFrameBits:
    def test_structure(self):
        pre, header, payload = plcp.build_short_frame_bits(b"\x00" * 10, 2.0)
        assert pre.size == 56 + 16
        assert header.size == 48
        assert payload.size == 80

    def test_sync_descrambles_to_zeros(self):
        pre, _, _ = plcp.build_short_frame_bits(b"", 2.0)
        plain = descramble_stream(pre)
        assert not plain[7:56].any()

    def test_rejects_1mbps(self):
        with pytest.raises(ValueError):
            plcp.build_short_frame_bits(b"", 1.0)

    def test_find_short_sfd(self):
        pre, _, _ = plcp.build_short_frame_bits(b"", 2.0)
        plain = descramble_stream(pre)
        assert plcp.find_short_sfd(plain) == 72

    def test_short_sfd_not_in_long_stream(self):
        head, _ = plcp.build_frame_bits(b"\x11" * 8, 1.0)
        plain = descramble_stream(head)
        assert plcp.find_short_sfd(plain, search_limit=160) == -1

    def test_long_sfd_not_in_short_stream(self):
        pre, _, _ = plcp.build_short_frame_bits(b"\x11" * 8, 2.0)
        plain = descramble_stream(pre)
        assert plcp.find_sfd(plain) == -1


class TestShortPreambleModem:
    def test_airtime_halved_preamble(self):
        mod = WifiModulator(8e6)
        long = mod.frame_airtime(100, 2.0, preamble="long")
        short = mod.frame_airtime(100, 2.0, preamble="short")
        assert long - short == pytest.approx(96e-6)

    def test_waveform_shorter(self):
        mod = WifiModulator(8e6)
        mpdu = build_data_frame(1, 2, b"s" * 50)
        long = mod.modulate(mpdu, 2.0, preamble="long")
        short = mod.modulate(mpdu, 2.0, preamble="short")
        assert long.size - short.size == 96 * 8

    def test_round_trip_2mbps(self):
        mod, dem = WifiModulator(8e6), WifiDemodulator(8e6)
        mpdu = build_data_frame(3, 4, bytes(range(80)), seq=2)
        packet = dem.demodulate(_embed(mod.modulate(mpdu, 2.0, preamble="short")))
        assert packet.preamble == "short"
        assert packet.mpdu == mpdu
        assert packet.fcs_ok

    @pytest.mark.parametrize("rate", [5.5, 11.0])
    def test_round_trip_cck_at_22msps(self, rate):
        mod, dem = WifiModulator(22e6), WifiDemodulator(22e6)
        mpdu = build_data_frame(3, 4, bytes(range(100)), seq=5)
        packet = dem.demodulate(
            _embed(mod.modulate(mpdu, rate, preamble="short"), seed=int(rate))
        )
        assert packet.preamble == "short"
        assert packet.mpdu == mpdu

    def test_cck_header_only_at_8msps(self):
        mod, dem = WifiModulator(8e6), WifiDemodulator(8e6)
        mpdu = build_data_frame(1, 2, b"h" * 60)
        packet = dem.demodulate(_embed(mod.modulate(mpdu, 11.0, preamble="short")))
        assert packet.header_only
        assert packet.preamble == "short"
        assert packet.plcp_header.mpdu_bytes == len(mpdu)

    def test_rejects_bad_preamble_name(self):
        mod = WifiModulator(8e6)
        with pytest.raises(ValueError):
            mod.modulate(b"\x00" * 20, 2.0, preamble="medium")

    def test_long_packets_still_decode(self):
        mod, dem = WifiModulator(8e6), WifiDemodulator(8e6)
        mpdu = build_data_frame(1, 2, b"l" * 40)
        packet = dem.demodulate(_embed(mod.modulate(mpdu, 1.0), seed=9))
        assert packet.preamble == "long"
        assert packet.mpdu == mpdu
