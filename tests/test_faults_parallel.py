"""Worker crashes, stalls and pool death through the parallel stage."""

import pytest

from repro import RFDumpMonitor
from repro.analysis.decoders import PacketRecord
from repro.core.config import MonitorConfig
from repro.core.dispatcher import DispatchedRange
from repro.core.parallel import ParallelAnalysisStage
from repro.dsp.samples import SampleBuffer
from repro.errors import DecodeTimeoutError, RFDumpError, WorkerCrashError
from repro.faults import CrashingDecoder, PoolKillerDecoder, SlowDecoder
from repro.obs import Observability


class _EmittingDecoder:
    """One packet per scanned range, wherever it runs."""

    def scan(self, buffer, **kwargs):
        return [
            PacketRecord(
                protocol="wifi", start_sample=buffer.start_sample,
                end_sample=buffer.end_sample, ok=True, decoder="fake",
            )
        ]


def _fake_inputs(n_ranges=3, span=1_000):
    buffer = SampleBuffer.from_array([0j] * (n_ranges * span))
    ranges = {
        "wifi": [
            DispatchedRange(start_sample=i * span, end_sample=(i + 1) * span)
            for i in range(n_ranges)
        ]
    }
    return buffer, ranges


def _packet_key(p):
    return (p.protocol, p.start_sample, p.end_sample, p.ok, p.decoder,
            p.payload_size, p.rate_mbps, p.channel)


@pytest.fixture(scope="module")
def serial_packets(wifi_trace):
    report = RFDumpMonitor(protocols=("wifi",)).process(wifi_trace.buffer)
    return sorted(_packet_key(p) for p in report.packets)


class TestDegrade:
    def test_worker_crash_loses_no_packets(self, wifi_trace, serial_packets):
        obs = Observability()
        monitor = RFDumpMonitor(
            config=MonitorConfig(
                protocols=("wifi",), workers=2, on_error="degrade", obs=obs
            )
        )
        stage = monitor.parallel_stage
        stage.decoders["wifi"] = CrashingDecoder(
            wrapped=stage.decoders["wifi"], at=None
        )
        with monitor:
            report = monitor.process(wifi_trace.buffer)
        assert sorted(_packet_key(p) for p in report.packets) == serial_packets
        assert report.parallel_fallbacks > 0
        records = [e for e in report.errors if e.stage == "analysis"]
        assert records
        assert {e.error for e in records} == {"InjectedFault"}
        assert {e.action for e in records} == {"fallback"}
        assert records[0].component == "wifi"
        assert "injected worker crash" in records[0].message
        assert stage.last_error is not None
        assert obs.registry.value(
            "rfdump_parallel_fallback_errors_total", protocol="wifi"
        ) >= 1

    def test_error_records_carry_sample_ranges(self):
        buffer, ranges = _fake_inputs(3)
        stage = ParallelAnalysisStage(
            {"wifi": CrashingDecoder(wrapped=_EmittingDecoder(), at=None)},
            workers=2, granularity="range", on_error="degrade",
        )
        with stage:
            packets, _, fallbacks = stage.run(buffer, ranges)
        records = stage.take_error_records()
        assert fallbacks == 3
        assert len(packets) == 3  # inline fallback re-decoded everything
        assert sorted((e.start_sample, e.end_sample) for e in records) == [
            (0, 1000), (1000, 2000), (2000, 3000)
        ]
        assert stage.take_error_records() == []  # drained

    def test_broken_process_pool_restarts_then_falls_back(self):
        obs = Observability()
        buffer, ranges = _fake_inputs(1)
        stage = ParallelAnalysisStage(
            {"wifi": PoolKillerDecoder()},
            workers=1, backend="process", on_error="degrade",
            max_pool_restarts=2, obs=obs,
        )
        with stage:
            packets, _, fallbacks = stage.run(buffer, ranges)
        # every rebuilt pool died too, so the task ended up inline (where
        # PoolKillerDecoder decodes normally)
        assert fallbacks == 1
        assert obs.registry.value(
            "rfdump_parallel_pool_restarts_total"
        ) == 2
        records = stage.take_error_records()
        assert records
        assert all(e.action == "fallback" for e in records)

    def test_slow_worker_times_out_and_is_shed(self):
        # degrade no longer re-runs a decode that already blew its
        # budget — that retry was the stall the watchdog exists to
        # prevent; the task is shed and counted instead
        obs = Observability()
        buffer, ranges = _fake_inputs(1)
        stage = ParallelAnalysisStage(
            {"wifi": SlowDecoder(wrapped=_EmittingDecoder(), delay=1.0)},
            workers=2, timeout_per_range=0.05, on_error="degrade", obs=obs,
        )
        packets, _, fallbacks = stage.run(buffer, ranges)
        stage._discard_executor()  # don't wait out the sleeping worker
        assert fallbacks == 0
        assert packets == []
        assert stage.shed_ranges == 1
        (record,) = stage.take_error_records()
        assert record.action == "timeout"
        assert obs.registry.value(
            "rfdump_ranges_shed_total", protocol="wifi"
        ) == 1


class TestRaise:
    def test_worker_crash_raises_typed_error(self):
        buffer, ranges = _fake_inputs(1)
        stage = ParallelAnalysisStage(
            {"wifi": CrashingDecoder(at=None)},
            workers=2, on_error="raise",
        )
        with stage:
            with pytest.raises(WorkerCrashError) as excinfo:
                stage.run(buffer, ranges)
        assert isinstance(excinfo.value, RFDumpError)
        assert excinfo.value.protocol == "wifi"

    def test_timeout_raises_typed_deadline_error(self):
        # raise mode treats a missed decode deadline as what it is: a
        # deadline fault, surfaced as DecodeTimeoutError (the silent
        # inline re-run used to hide the stall entirely)
        buffer, ranges = _fake_inputs(1)
        stage = ParallelAnalysisStage(
            {"wifi": SlowDecoder(wrapped=_EmittingDecoder(), delay=1.0)},
            workers=2, timeout_per_range=0.05, on_error="raise",
        )
        with pytest.raises(DecodeTimeoutError) as excinfo:
            stage.run(buffer, ranges)
        stage._discard_executor()
        assert isinstance(excinfo.value, RFDumpError)
        assert excinfo.value.protocol == "wifi"


class TestSkip:
    def test_failed_tasks_dropped_not_retried(self):
        obs = Observability()
        buffer, ranges = _fake_inputs(3)
        stage = ParallelAnalysisStage(
            {"wifi": CrashingDecoder(wrapped=_EmittingDecoder(), at=None)},
            workers=2, granularity="range", on_error="skip", obs=obs,
        )
        with stage:
            packets, _, fallbacks = stage.run(buffer, ranges)
        assert packets == []
        assert fallbacks == 0
        assert obs.registry.value(
            "rfdump_parallel_skipped_tasks_total"
        ) == 3
        assert len(stage.take_error_records()) == 3


class TestLegacy:
    def test_default_mode_still_falls_back_but_records(self):
        buffer, ranges = _fake_inputs(2)
        stage = ParallelAnalysisStage(
            {"wifi": CrashingDecoder(wrapped=_EmittingDecoder(), at=None)},
            workers=2, granularity="range",
        )
        with stage:
            packets, _, fallbacks = stage.run(buffer, ranges)
        assert fallbacks == 2
        assert len(packets) == 2
        records = stage.take_error_records()
        assert len(records) == 2
        assert stage.last_error in records
