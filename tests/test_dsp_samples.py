"""Tests for repro.dsp.samples."""

import numpy as np
import pytest

from repro.dsp.samples import SampleBuffer, iter_chunks
from repro.util.timebase import Timebase


def _buffer(n=1000, fs=8e6, start=0):
    return SampleBuffer(np.arange(n).astype(np.complex64), Timebase(fs), start)


class TestSampleBuffer:
    def test_coerces_dtype(self):
        buf = SampleBuffer(np.ones(10, dtype=np.float64), Timebase(8e6))
        assert buf.samples.dtype == np.complex64

    def test_len_and_duration(self):
        buf = _buffer(800)
        assert len(buf) == 800
        assert buf.duration == pytest.approx(1e-4)

    def test_end_sample(self):
        buf = _buffer(100, start=50)
        assert buf.end_sample == 150

    def test_slice_absolute_indices(self):
        buf = _buffer(100, start=50)
        sub = buf.slice(60, 70)
        assert sub.start_sample == 60
        assert len(sub) == 10
        assert sub.samples[0] == 10  # original index 10

    def test_slice_clamps_to_bounds(self):
        buf = _buffer(100, start=0)
        sub = buf.slice(-10, 1000)
        assert sub.start_sample == 0
        assert len(sub) == 100

    def test_slice_empty_when_inverted(self):
        buf = _buffer(100)
        assert len(buf.slice(80, 20)) == 0

    def test_time_of(self):
        buf = _buffer(100, fs=1e6, start=100)
        assert buf.time_of(0) == pytest.approx(1e-4)

    def test_from_array(self):
        buf = SampleBuffer.from_array(np.zeros(10), sample_rate=2e6)
        assert buf.sample_rate == 2e6


class TestIterChunks:
    def test_chunk_count(self):
        buf = _buffer(1000)
        chunks = list(iter_chunks(buf, 200))
        assert len(chunks) == 5

    def test_tail_chunk_kept(self):
        buf = _buffer(1001)
        chunks = list(iter_chunks(buf, 200))
        assert len(chunks) == 6
        assert len(chunks[-1][1]) == 1

    def test_absolute_start_samples(self):
        buf = _buffer(400, start=1000)
        starts = [s for s, _ in iter_chunks(buf, 200)]
        assert starts == [1000, 1200]

    def test_chunks_cover_everything(self):
        buf = _buffer(777)
        total = sum(len(c) for _, c in iter_chunks(buf, 100))
        assert total == 777

    def test_rejects_bad_chunk_size(self):
        with pytest.raises(ValueError):
            list(iter_chunks(_buffer(10), 0))
