"""Tests for repro.obs.tracing — span nesting and export formats."""

import json

from repro.obs.tracing import Tracer


class FakeClock:
    """Deterministic clock: each call advances by `step` seconds."""

    def __init__(self, step=1.0):
        self.t = 0.0
        self.step = step

    def __call__(self):
        now = self.t
        self.t += self.step
        return now


def test_span_nesting_parent_and_depth():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("process") as outer:
        with tracer.span("peak_detection", category="stage") as mid:
            with tracer.span("range", category="range",
                             start_sample=10, end_sample=90) as inner:
                pass
    assert outer.parent is None and outer.depth == 0
    assert mid.parent == outer.id and mid.depth == 1
    assert inner.parent == mid.id and inner.depth == 2
    assert inner.start_sample == 10 and inner.end_sample == 90
    # all spans closed, durations non-negative
    assert all(s.t_end >= s.t_start for s in tracer.spans)


def test_siblings_share_parent():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("analysis") as top:
        with tracer.span("demod[wifi]"):
            pass
        with tracer.span("demod[bluetooth]"):
            pass
    kids = [s for s in tracer.spans if s.parent == top.id]
    assert [s.name for s in kids] == ["demod[wifi]", "demod[bluetooth]"]
    assert all(s.depth == 1 for s in kids)


def test_record_nests_under_open_span():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("analysis") as top:
        replayed = tracer.record(
            "demod[wifi]", 0.25, category="task", worker="pid-1234",
            start_sample=0, end_sample=100,
        )
        child = tracer.record("range", 0.1, category="range",
                              parent=replayed.id, worker="pid-1234")
    assert replayed.parent == top.id
    assert replayed.depth == 1
    assert replayed.duration == 0.25
    assert replayed.worker == "pid-1234"
    assert child.parent == replayed.id and child.depth == 2


def test_record_without_context_is_root():
    tracer = Tracer(clock=FakeClock())
    span = tracer.record("orphan", 1.0)
    assert span.parent is None and span.depth == 0


def test_jsonl_roundtrip():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("a", kind="timing"):
        with tracer.span("b", start_sample=5):
            pass
    lines = tracer.to_jsonl().splitlines()
    objs = [json.loads(line) for line in lines]
    assert len(objs) == 2
    by_name = {o["name"]: o for o in objs}
    assert by_name["a"]["kind"] == "timing"
    assert by_name["b"]["parent"] == by_name["a"]["id"]
    assert by_name["b"]["start_sample"] == 5


def test_chrome_export_shape():
    tracer = Tracer(clock=FakeClock())
    with tracer.span("stage"):
        tracer.record("task", 0.5, worker="worker-1")
    doc = tracer.to_chrome()
    assert doc["displayTimeUnit"] == "ms"
    events = doc["traceEvents"]
    meta = [e for e in events if e["ph"] == "M"]
    spans = [e for e in events if e["ph"] == "X"]
    assert {e["args"]["name"] for e in meta} == {"main", "worker-1"}
    assert len(spans) == 2
    # one tid track per worker, shared pid
    tids = {e["tid"] for e in spans}
    assert len(tids) == 2
    assert all(e["pid"] == 0 for e in spans)
    assert all(e["dur"] >= 0 for e in spans)
    # the whole document must be JSON-serialisable (Chrome loads it)
    json.dumps(doc)


def test_thread_isolation_of_span_stack():
    import threading

    tracer = Tracer(clock=FakeClock())
    seen = {}

    def other_thread():
        with tracer.span("other", worker="t2") as s:
            seen["parent"] = s.parent

    with tracer.span("main_stage"):
        t = threading.Thread(target=other_thread)
        t.start()
        t.join()
    # the other thread's stack is independent: its span is a root
    assert seen["parent"] is None
