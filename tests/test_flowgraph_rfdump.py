"""Tests for the flowgraph assembly of the RFDump architecture."""

import pytest

from repro import RFDumpMonitor, packet_miss_rate
from repro.flowgraph.rfdump_graph import build_rfdump_graph


class TestGraphAssembly:
    def test_graph_matches_monitor(self, wifi_trace):
        """The flowgraph composition decodes what the batch monitor does."""
        graph, packets, classifications = build_rfdump_graph(
            wifi_trace.buffer, protocols=("wifi",)
        )
        graph.run()
        batch = RFDumpMonitor(protocols=("wifi",)).process(wifi_trace.buffer)
        assert len(packets.items) == len(batch.packets_for("wifi"))
        graph_starts = sorted(p.start_sample for p in packets.items)
        batch_starts = sorted(p.start_sample for p in batch.packets_for("wifi"))
        assert graph_starts == batch_starts

    def test_classifications_collected(self, wifi_trace):
        graph, _, classifications = build_rfdump_graph(
            wifi_trace.buffer, protocols=("wifi",), demodulate=False
        )
        graph.run()
        miss = packet_miss_rate(
            wifi_trace.ground_truth, classifications.items, "wifi"
        )
        assert miss == 0.0

    def test_no_demod_emits_ranges(self, wifi_trace):
        graph, sink, _ = build_rfdump_graph(
            wifi_trace.buffer, protocols=("wifi",), demodulate=False
        )
        graph.run()
        assert sink.items
        protocol, rng, _ = sink.items[0]
        assert protocol == "wifi"
        assert rng.length > 0

    def test_graph_block_count(self, wifi_trace):
        graph, _, _ = build_rfdump_graph(
            wifi_trace.buffer, protocols=("wifi", "bluetooth")
        )
        names = {b.name for b in graph.blocks}
        assert "peak-detector" in names
        assert "dispatcher" in names
        assert "wifi-analyzer" in names
        assert "bluetooth-analyzer" in names
        assert "WifiSifsTimingDetector" in names

    def test_rerun_is_idempotent(self, wifi_trace):
        graph, packets, _ = build_rfdump_graph(
            wifi_trace.buffer, protocols=("wifi",)
        )
        graph.run()
        first = len(packets.items)
        graph.run()
        assert len(packets.items) == first

    def test_custom_detectors(self, wifi_trace):
        from repro.core.detectors import WifiSifsTimingDetector

        graph, _, classifications = build_rfdump_graph(
            wifi_trace.buffer, protocols=("wifi",),
            detectors=[WifiSifsTimingDetector()], demodulate=False,
        )
        graph.run()
        assert classifications.items
        assert all(
            c.detector == "WifiSifsTimingDetector" for c in classifications.items
        )

    def test_empty_buffer(self):
        import numpy as np

        from repro.dsp.samples import SampleBuffer
        from repro.util.timebase import Timebase

        buf = SampleBuffer(np.zeros(0, dtype=np.complex64), Timebase(8e6))
        graph, packets, _ = build_rfdump_graph(buf, protocols=("wifi",))
        graph.run()
        assert packets.items == []
