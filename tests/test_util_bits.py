"""Tests for repro.util.bits: packing, CRCs, scramblers, whitening."""

import numpy as np
import pytest

from repro.util.bits import (
    BluetoothWhitener,
    Scrambler80211,
    bits_to_bytes,
    bt_crc,
    bt_hec,
    bytes_to_bits,
    crc16_ccitt,
    crc32_802,
    descramble_stream,
    pack_uint,
    unpack_uint,
)


class TestPacking:
    def test_bytes_to_bits_lsb_first(self):
        bits = bytes_to_bits(b"\x01")
        assert list(bits) == [1, 0, 0, 0, 0, 0, 0, 0]

    def test_bits_bytes_round_trip(self):
        data = bytes(range(256))
        assert bits_to_bytes(bytes_to_bits(data)) == data

    def test_bits_to_bytes_rejects_partial(self):
        with pytest.raises(ValueError):
            bits_to_bytes(np.ones(7, dtype=np.uint8))

    def test_pack_unpack_round_trip(self):
        for value, nbits in [(0, 1), (1, 1), (0xA5, 8), (0xFFFF, 16), (12345, 14)]:
            assert unpack_uint(pack_uint(value, nbits)) == value

    def test_pack_uint_rejects_overflow(self):
        with pytest.raises(ValueError):
            pack_uint(256, 8)

    def test_pack_uint_rejects_negative(self):
        with pytest.raises(ValueError):
            pack_uint(-1, 8)


class TestCrc32:
    def test_known_vector(self):
        # the classic CRC-32 check value
        assert crc32_802(b"123456789") == 0xCBF43926

    def test_matches_zlib(self):
        import zlib

        for data in (b"", b"\x00", b"hello world", bytes(range(100))):
            assert crc32_802(data) == zlib.crc32(data)

    def test_detects_single_bit_flip(self):
        data = bytearray(b"some frame body")
        good = crc32_802(bytes(data))
        data[3] ^= 0x10
        assert crc32_802(bytes(data)) != good


class TestCrc16:
    def test_deterministic(self):
        bits = bytes_to_bits(b"\xaa\x55")
        assert crc16_ccitt(bits) == crc16_ccitt(bits)

    def test_complement_differs(self):
        bits = bytes_to_bits(b"\xaa\x55")
        plain = crc16_ccitt(bits, complement=False)
        comp = crc16_ccitt(bits, complement=True)
        assert plain ^ comp == 0xFFFF

    def test_sensitive_to_every_bit(self):
        bits = bytes_to_bits(b"\x12\x34\x56")
        reference = crc16_ccitt(bits)
        for i in range(bits.size):
            flipped = bits.copy()
            flipped[i] ^= 1
            assert crc16_ccitt(flipped) != reference


class TestBluetoothChecks:
    def test_hec_is_8_bit(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        assert 0 <= bt_hec(bits) <= 0xFF

    def test_hec_depends_on_uap(self):
        bits = np.ones(10, dtype=np.uint8)
        assert bt_hec(bits, uap=0x00) != bt_hec(bits, uap=0x47)

    def test_crc_depends_on_uap(self):
        bits = bytes_to_bits(b"payload")
        assert bt_crc(bits, uap=0) != bt_crc(bits, uap=0x47)

    def test_crc_detects_corruption(self):
        bits = bytes_to_bits(b"payload data here")
        good = bt_crc(bits)
        bits[5] ^= 1
        assert bt_crc(bits) != good


class TestScrambler:
    def test_round_trip(self):
        data = bytes_to_bits(b"the quick brown fox")
        tx = Scrambler80211().scramble(data)
        rx = Scrambler80211().descramble(tx)
        assert np.array_equal(rx, data)

    def test_scrambled_differs_from_plain(self):
        data = np.ones(64, dtype=np.uint8)
        assert not np.array_equal(Scrambler80211().scramble(data), data)

    def test_descrambler_self_synchronizes(self):
        # start the receive descrambler with the WRONG state: after 7 bits
        # the output matches anyway
        data = np.ones(64, dtype=np.uint8)
        tx = Scrambler80211().scramble(data)
        rx = Scrambler80211(seed=0).descramble(tx)
        assert np.array_equal(rx[7:], data[7:])

    def test_vectorized_descramble_matches_stateful(self):
        data = bytes_to_bits(b"vectorization check payload")
        tx = Scrambler80211().scramble(data)
        slow = Scrambler80211(seed=0).descramble(tx)
        fast = descramble_stream(tx)
        assert np.array_equal(slow[7:], fast[7:])

    def test_scramble_breaks_long_runs(self):
        # the whole point: SYNC ones become a balanced-ish sequence
        tx = Scrambler80211().scramble(np.ones(128, dtype=np.uint8))
        ones = int(tx.sum())
        assert 32 < ones < 96


class TestWhitener:
    def test_round_trip(self):
        data = bytes_to_bits(b"bluetooth payload")
        tx = BluetoothWhitener(clock=17).process(data)
        rx = BluetoothWhitener(clock=17).process(tx)
        assert np.array_equal(rx, data)

    def test_wrong_clock_fails(self):
        data = bytes_to_bits(b"bluetooth payload")
        tx = BluetoothWhitener(clock=17).process(data)
        rx = BluetoothWhitener(clock=18).process(tx)
        assert not np.array_equal(rx, data)

    def test_distinct_seeds_distinct_sequences(self):
        zero = np.zeros(64, dtype=np.uint8)
        seqs = {BluetoothWhitener(c).process(zero).tobytes() for c in range(64)}
        assert len(seqs) == 64

    def test_stream_continues_across_calls(self):
        data = bytes_to_bits(b"0123456789abcdef")
        one_shot = BluetoothWhitener(5).process(data)
        w = BluetoothWhitener(5)
        two_part = np.concatenate([w.process(data[:40]), w.process(data[40:])])
        assert np.array_equal(one_shot, two_part)
