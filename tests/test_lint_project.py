"""Whole-program analyzer: ProjectContext index, RFD701-706, acceptance.

Fixture trees are written under ``tmp_path/src/repro/...`` so
``package_rel_path`` roots them exactly like the real tree, then run
through :func:`lint_project`.  The acceptance tests at the bottom pin
the ISSUE's gate: the real repo produces **zero** active RFD7xx
findings, and its static lock graph contains the one cross-class edge
the service stack is designed around (``service.hub ->
service.subscriber``).
"""

import os
import textwrap

import pytest

from repro.lint import build_project, lint_project
from repro.lint.rules.concurrency_project import build_lock_graph
from repro.tools import rflint

REPO_ROOT = os.path.dirname(os.path.dirname(os.path.abspath(__file__)))
SRC = os.path.join(REPO_ROOT, "src")
TESTS = os.path.join(REPO_ROOT, "tests")
BASELINE = os.path.join(REPO_ROOT, "lint-baseline.json")

RACY = """
import queue
import threading
import time


class Racy:
    def __init__(self):
        self._lock = threading.Lock()
        self._other = threading.Lock()
        self._cv = threading.Condition()
        self._items = []
        self.count = 0

    def guarded(self):
        with self._lock:
            self._items.append(1)
            self.count += 1

    def unguarded_assign(self):
        self.count = 5

    def unguarded_mutator(self):
        self._items.append(2)

    def sleepy(self):
        with self._lock:
            time.sleep(0.1)

    def queue_get(self):
        q = queue.Queue()
        with self._lock:
            q.get()

    def waits_with_two(self):
        with self._other:
            with self._cv:
                self._cv.wait()

    def order_ab(self):
        with self._lock:
            with self._other:
                pass

    def order_ba(self):
        with self._other:
            with self._lock:
                pass


def spawn():
    worker = threading.Thread(target=print)
    worker.start()
    return worker
"""


def _write_tree(root, files):
    for rel, source in files.items():
        path = root / rel
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(textwrap.dedent(source))
    return str(root)


@pytest.fixture
def racy_findings(tmp_path):
    src = _write_tree(tmp_path, {"src/repro/svc/racy.py": RACY})
    return lint_project([src])


def _by_rule(findings, rule):
    return [f for f in findings if f.rule == rule]


class TestUnguardedSharedWrite:
    def test_both_unguarded_writes_found(self, racy_findings):
        found = _by_rule(racy_findings, "RFD701")
        assert len(found) == 2
        messages = "\n".join(f.message for f in found)
        assert "Racy.unguarded_assign writes self.count" in messages
        assert "Racy.unguarded_mutator writes self._items" in messages

    def test_guarded_and_init_writes_are_clean(self, racy_findings):
        for finding in _by_rule(racy_findings, "RFD701"):
            assert "__init__" not in finding.message
            assert ".guarded " not in finding.message


class TestBlockingCallUnderLock:
    def test_sleep_queue_and_multilock_wait(self, racy_findings):
        found = _by_rule(racy_findings, "RFD702")
        messages = [f.message for f in found]
        assert len(found) == 3
        assert any("time.sleep" in m for m in messages)
        assert any("queue .get() without timeout" in m for m in messages)
        assert any("unbounded .wait()" in m for m in messages)

    def test_waiting_on_own_condition_alone_is_the_protocol(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/svc/cv.py": """
            import threading


            class Consumer:
                def __init__(self):
                    self._cv = threading.Condition()
                    self.ready = False

                def block_until_ready(self):
                    with self._cv:
                        while not self.ready:
                            self._cv.wait()
        """})
        assert _by_rule(lint_project([src]), "RFD702") == []


class TestLockOrderCycle:
    def test_conflicting_with_nesting_is_a_cycle(self, racy_findings):
        found = _by_rule(racy_findings, "RFD703")
        assert len(found) == 1
        assert ("lock-order cycle: Racy._lock -> Racy._other -> Racy._lock"
                in found[0].message)

    def test_cross_class_call_extends_the_graph(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/svc/hub2.py": """
            from repro.sanitize.hooks import new_condition, new_lock


            class Mailbox:
                def __init__(self):
                    self._cond = new_condition("svc.mailbox")

                def put_final(self, item):
                    with self._cond:
                        return item


            class Hub2:
                def __init__(self):
                    self._lock = new_lock("svc.hub")
                    self._mailbox = Mailbox()

                def publish(self, item):
                    with self._lock:
                        self._mailbox.put_final(item)
        """})
        graph = build_lock_graph(build_project([src]))
        assert ("svc.hub", "svc.mailbox") in graph.edges
        # consistent ordering only: no cycle finding
        assert _by_rule(lint_project([src]), "RFD703") == []

    def test_interprocedural_inversion_is_found(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/svc/inv.py": """
            from repro.sanitize.hooks import new_lock


            class Inner:
                def __init__(self):
                    self._lock = new_lock("svc.inner")
                    self._back = Outer()

                def poke(self):
                    with self._lock:
                        self._back.touch()


            class Outer:
                def __init__(self):
                    self._lock = new_lock("svc.outer")
                    self._inner = Inner()

                def touch(self):
                    with self._lock:
                        return None

                def run(self):
                    with self._lock:
                        self._inner.poke()
        """})
        found = _by_rule(lint_project([src]), "RFD703")
        assert any(
            "lock-order cycle: svc.inner -> svc.outer -> svc.inner"
            in f.message for f in found)


class TestUnjoinedThread:
    def test_bare_thread_is_flagged(self, racy_findings):
        found = _by_rule(racy_findings, "RFD704")
        assert len(found) == 1
        assert "neither daemon" in found[0].message

    def test_daemon_or_bounded_join_is_clean(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/svc/threads.py": """
            import threading


            def daemonized():
                return threading.Thread(target=print, daemon=True)


            def joined():
                worker = threading.Thread(target=print)
                worker.start()
                worker.join(timeout=5.0)
        """})
        assert _by_rule(lint_project([src]), "RFD704") == []


class TestFrameFieldDrift:
    @pytest.fixture
    def proto_findings(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/service/proto.py": """
            def hello_frame():
                return {"type": "hello", "proto": 1}


            def decode_hello(header):
                return header["proto"]


            def orphan_frame():
                return {"type": "orphan"}


            def decode_bye(doc):
                return doc["type"]


            def handle(header):
                ftype = header.get("type")
                if ftype == "hello":
                    return header.get("missing_field")
                if ftype == "goodbye":
                    return None
                return ftype
        """})
        return _by_rule(lint_project([src]), "RFD705")

    def test_all_five_drift_shapes(self, proto_findings):
        messages = [f.message for f in proto_findings]
        assert len(messages) == 5
        assert any("requires header field 'missing_field'" in m
                   for m in messages)
        assert any("matches frame type 'goodbye'" in m for m in messages)
        assert any("'orphan' is emitted but no parser" in m for m in messages)
        assert any("builder orphan_frame has no decode_orphan" in m
                   for m in messages)
        assert any("decoder decode_bye has no bye_frame" in m
                   for m in messages)

    def test_paired_builder_and_emitted_fields_are_clean(self,
                                                         proto_findings):
        messages = "\n".join(f.message for f in proto_findings)
        # hello_frame/decode_hello pair, emitted "proto" field, checked
        # "hello" type: none of these drift
        assert "hello_frame" not in messages
        assert "'proto'" not in messages
        assert "frame type 'hello'" not in messages

    def test_non_protocol_modules_are_out_of_scope(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/phy/frames.py": """
            def handle(header):
                return header.get("nonexistent_field")
        """})
        assert _by_rule(lint_project([src]), "RFD705") == []


class TestMetricNameDrift:
    @pytest.fixture
    def metric_tree(self, tmp_path):
        _write_tree(tmp_path, {
            "src/repro/obs/reg.py": """
                class Registry:
                    def counter(self, name):
                        return name


                def setup(registry):
                    registry.counter("rfdump_windows_total")
                    return registry
            """,
            "tests/test_metrics_ref.py": """
                def test_names():
                    good = "rfdump_windows_total"
                    series = "rfdump_windows_total_count"
                    stale = "rfdump_missing_total"
                    return good, series, stale
            """,
        })
        return str(tmp_path / "src"), str(tmp_path / "tests")

    def test_unregistered_reference_in_tests_is_found(self, metric_tree):
        src, tests = metric_tree
        found = _by_rule(lint_project([src], reference_paths=[tests]),
                         "RFD706")
        assert len(found) == 1
        assert "rfdump_missing_total" in found[0].message  # rfdump: noqa[RFD706]

    def test_registered_and_histogram_series_names_are_known(
            self, metric_tree):
        src, tests = metric_tree
        messages = [f.message for f in
                    _by_rule(lint_project([src], reference_paths=[tests]),
                             "RFD706")]
        assert not any("rfdump_windows_total" in m  # rfdump: noqa[RFD706]
                       for m in messages)


class TestProjectContext:
    def test_index_shapes(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/svc/ctx.py": """
            import threading

            from repro.sanitize.hooks import new_lock


            class Box:
                def __init__(self):
                    self._lock = new_lock("svc.box")
                    self._plain = threading.Lock()
                    self._peer = Peer()

                @property
                def size(self):
                    return 0


            class Peer:
                def run(self):
                    worker = threading.Thread(target=print, daemon=True)
                    worker.start()
        """})
        project = build_project([src])
        box = project.classes["Box"]
        assert box.lock_attrs == {"_lock": "svc.box", "_plain": "Box._plain"}
        assert box.attr_types["_peer"] == "Peer"
        assert box.properties == {"size"}
        assert project.resolve_attr_class(box, "_peer").name == "Peer"
        assert project.classes["Peer"].spawns_threads
        assert "threading" in project.import_graph["repro/svc/ctx.py"]

    def test_noqa_suppresses_project_findings(self, tmp_path):
        src = _write_tree(tmp_path, {"src/repro/svc/quiet.py": """
            import threading


            def spawn():
                worker = threading.Thread(target=print)  # rfdump: noqa[RFD704]
                worker.start()
                return worker
        """})
        assert lint_project([src]) == []


class TestRepoAcceptance:
    def test_repo_has_zero_active_project_findings(self):
        """The ISSUE gate: the whole-program pass is clean on the tree."""
        findings = lint_project([SRC], reference_paths=[TESTS])
        assert findings == [], "\n" + "\n".join(f.format() for f in findings)

    def test_repo_lock_graph_has_hub_to_subscriber_edge(self):
        project = build_project([SRC])
        hub = project.classes["EventHub"]
        assert "service.hub" in hub.lock_attrs.values()
        queue_cls = project.classes["SubscriberQueue"]
        assert "service.subscriber" in queue_cls.lock_attrs.values()
        graph = build_lock_graph(project)
        assert ("service.hub", "service.subscriber") in graph.edges

    def test_cli_project_mode_defaults_and_exits_zero(self, monkeypatch,
                                                      capsys):
        monkeypatch.chdir(REPO_ROOT)
        assert rflint.main(["--project"]) == 0

    def test_cli_list_rules_names_project_rules(self, capsys):
        rflint.main(["--list-rules"])
        out = capsys.readouterr().out
        for rule_id in ("RFD701", "RFD702", "RFD703", "RFD704",
                        "RFD705", "RFD706"):
            assert rule_id in out
            assert "(--project)" in out
