"""Tests for JSON/CSV export of monitoring results."""

import csv
import io
import json

import pytest

from repro.analysis.export import (
    _packet_rows,
    accuracy_to_json,
    packet_dicts,
    packets_to_csv,
    report_to_json,
)
from repro.analysis.stats import AccuracyReport


class TestPacketExport:
    def test_rows_sorted_by_time(self, wifi_report, wifi_trace):
        rows = _packet_rows(wifi_report.packets, wifi_trace.sample_rate)
        times = [r["time_s"] for r in rows]
        assert times == sorted(times)
        assert all(r["protocol"] == "wifi" for r in rows)

    def test_snr_included(self, wifi_report, wifi_trace):
        rows = _packet_rows(wifi_report.packets, wifi_trace.sample_rate)
        assert all(isinstance(r["snr_db"], float) for r in rows)
        # the fixture renders at 20 dB
        assert all(15 < r["snr_db"] < 25 for r in rows)

    def test_packet_dicts_deprecated_but_working(self, wifi_report, wifi_trace):
        import repro.analysis.export as export_mod
        export_mod._warned_packet_dicts = False
        with pytest.warns(DeprecationWarning, match="PacketEvent"):
            rows = packet_dicts(wifi_report.packets, wifi_trace.sample_rate)
        assert rows == _packet_rows(wifi_report.packets, wifi_trace.sample_rate)
        # the shim warns exactly once per process, not per call
        import warnings as _warnings
        with _warnings.catch_warnings():
            _warnings.simplefilter("error")
            packet_dicts(wifi_report.packets, wifi_trace.sample_rate)

    def test_csv_round_trips(self, wifi_report, wifi_trace):
        text = packets_to_csv(wifi_report.packets, wifi_trace.sample_rate)
        rows = list(csv.DictReader(io.StringIO(text)))
        assert len(rows) == len(wifi_report.packets)
        assert rows[0]["protocol"] == "wifi"
        assert float(rows[0]["time_s"]) >= 0

    def test_empty_csv_has_header(self):
        text = packets_to_csv([], 8e6)
        assert text.startswith("time_s,protocol")
        assert len(text.splitlines()) == 1


class TestReportExport:
    def test_json_valid_and_complete(self, wifi_report, wifi_trace):
        payload = json.loads(report_to_json(wifi_report, wifi_trace.sample_rate))
        assert payload["total_samples"] == wifi_report.total_samples
        assert len(payload["packets"]) == len(wifi_report.packets)
        assert len(payload["classifications"]) == len(wifi_report.classifications)
        assert "peak_detection" in payload["stage_seconds"]
        assert payload["forwarded_samples"]["wifi"] > 0

    def test_accuracy_json(self):
        report = AccuracyReport(
            miss_rate={"wifi": 0.01},
            false_positive_rate={"wifi": 0.001},
            found={"wifi": 99},
            total={"wifi": 100},
        )
        payload = json.loads(accuracy_to_json(report))
        assert payload["miss_rate"]["wifi"] == 0.01
        assert payload["total"]["wifi"] == 100
