"""Tests for repro.obs.metrics and the Prometheus/text exports."""

import math

import pytest

from repro.obs import NULL, Observability
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    MetricsRegistry,
)
from repro.obs.export import render_metrics_table, render_prometheus


class TestCounter:
    def test_starts_at_zero_and_accumulates(self):
        c = Counter("x_total")
        assert c.value == 0
        c.inc()
        c.inc(5)
        assert c.value == 6

    def test_rejects_negative(self):
        with pytest.raises(ValueError):
            Counter("x_total").inc(-1)


class TestGauge:
    def test_set_inc_dec(self):
        g = Gauge("x")
        g.set(4.5)
        g.inc()
        g.dec(0.5)
        assert g.value == pytest.approx(5.0)


class TestHistogram:
    def test_rejects_empty_or_unsorted_buckets(self):
        with pytest.raises(ValueError):
            Histogram("h", buckets=())
        with pytest.raises(ValueError):
            Histogram("h", buckets=(1.0, 1.0))
        with pytest.raises(ValueError):
            Histogram("h", buckets=(2.0, 1.0))

    def test_value_on_bound_counts_le(self):
        # Prometheus `le` semantics: a value equal to a bound lands in
        # that bound's bucket, deterministically.
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(1.0)
        assert h.bucket_counts == [1, 0, 0]
        h.observe(2.0)
        assert h.bucket_counts == [1, 1, 0]

    def test_below_first_and_above_last(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        h.observe(-100.0)      # below everything -> first bucket
        h.observe(2.0000001)   # above last finite bound -> +Inf bucket
        assert h.bucket_counts == [1, 0, 1]
        assert h.count == 2

    def test_sum_and_cumulative(self):
        h = Histogram("h", buckets=(1.0, 2.0))
        for v in (0.5, 1.5, 3.0):
            h.observe(v)
        assert h.sum == pytest.approx(5.0)
        cum = h.cumulative()
        assert cum == [(1.0, 1), (2.0, 2), (math.inf, 3)]

    def test_identical_observations_identical_buckets(self):
        a = Histogram("h", buckets=(1e-3, 1e-2, 1e-1))
        b = Histogram("h", buckets=(1e-3, 1e-2, 1e-1))
        for v in (5e-4, 1e-3, 5e-2, 0.2, 1e-2):
            a.observe(v)
            b.observe(v)
        assert a.bucket_counts == b.bucket_counts


class TestRegistry:
    def test_get_or_create_returns_same_series(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", stage="demod")
        b = reg.counter("x_total", stage="demod")
        assert a is b
        a.inc(3)
        assert reg.value("x_total", stage="demod") == 3

    def test_distinct_labels_distinct_series(self):
        reg = MetricsRegistry()
        reg.counter("x_total", stage="a").inc()
        reg.counter("x_total", stage="b").inc(2)
        assert reg.value("x_total", stage="a") == 1
        assert reg.value("x_total", stage="b") == 2
        assert len(reg.series("x_total")) == 2

    def test_label_order_does_not_matter(self):
        reg = MetricsRegistry()
        a = reg.counter("x_total", stage="a", proto="wifi")
        b = reg.counter("x_total", proto="wifi", stage="a")
        assert a is b

    def test_kind_conflict_rejected(self):
        reg = MetricsRegistry()
        reg.counter("x")
        with pytest.raises(ValueError):
            reg.gauge("x")
        with pytest.raises(ValueError):
            reg.histogram("x", other="labels")

    def test_missing_series_value_is_none(self):
        assert MetricsRegistry().value("absent") is None

    def test_collect_sorted(self):
        reg = MetricsRegistry()
        reg.counter("b_total")
        reg.counter("a_total")
        reg.counter("a_total", z="2")
        names = [(m.name, m.labels) for m in reg.collect()]
        assert names == sorted(names)


class TestPrometheusRender:
    def test_counter_and_gauge_lines(self):
        reg = MetricsRegistry()
        reg.counter("pkts_total", help="decoded packets", protocol="wifi").inc(7)
        reg.gauge("floor").set(1.5)
        page = render_prometheus(reg)
        assert "# TYPE pkts_total counter" in page
        assert "# HELP pkts_total decoded packets" in page
        assert 'pkts_total{protocol="wifi"} 7' in page
        assert "# TYPE floor gauge" in page
        assert "floor 1.5" in page

    def test_histogram_exposition(self):
        reg = MetricsRegistry()
        h = reg.histogram("lat_seconds", buckets=(0.1, 1.0), stage="d")
        h.observe(0.05)
        h.observe(0.5)
        h.observe(5.0)
        page = render_prometheus(reg)
        assert 'lat_seconds_bucket{stage="d",le="0.1"} 1' in page
        assert 'lat_seconds_bucket{stage="d",le="1"} 2' in page
        assert 'lat_seconds_bucket{stage="d",le="+Inf"} 3' in page
        assert 'lat_seconds_count{stage="d"} 3' in page
        assert 'lat_seconds_sum{stage="d"}' in page

    def test_label_escaping(self):
        reg = MetricsRegistry()
        reg.counter("x_total", label='has "quotes"\\and\nnewline').inc()
        page = render_prometheus(reg)
        assert '\\"quotes\\"' in page
        assert "\\n" in page

    def test_help_escaping_round_trips(self):
        # regression: HELP text with a newline or backslash was emitted
        # raw, splitting the comment across lines and corrupting the page
        reg = MetricsRegistry()
        help_text = 'multi\nline help with \\ backslash and "quotes"'
        reg.counter("esc_total", help=help_text).inc()
        page = render_prometheus(reg)
        # the page stays line-parseable: every line is a comment or a
        # sample, and the HELP comment is a single line
        help_lines = [l for l in page.splitlines()
                      if l.startswith("# HELP esc_total ")]
        assert len(help_lines) == 1
        for line in page.splitlines():
            assert line.startswith("#") or line.split()[0] == "esc_total"
        # un-escaping per the text-format spec recovers the original
        # (quotes pass through unescaped in HELP, unlike label values)
        escaped = help_lines[0][len("# HELP esc_total "):]
        unescaped = escaped.replace("\\n", "\n").replace("\\\\", "\\")
        assert unescaped == help_text

    def test_deterministic_output(self):
        def build():
            reg = MetricsRegistry()
            reg.counter("b_total", p="2").inc(2)
            reg.counter("a_total").inc(1)
            reg.counter("b_total", p="1").inc(1)
            return render_prometheus(reg)

        assert build() == build()

    def test_empty_registry_renders_empty(self):
        assert render_prometheus(MetricsRegistry()) == ""

    def test_human_table(self):
        reg = MetricsRegistry()
        reg.counter("x_total", stage="demod").inc(3)
        reg.histogram("h_seconds", buckets=(1.0,)).observe(0.5)
        table = render_metrics_table(reg)
        assert "x_total" in table
        assert "stage=demod" in table
        assert "n=1" in table


class TestObservabilityFacade:
    def test_shortcuts_share_registry(self):
        obs = Observability()
        obs.counter("x_total").inc()
        assert obs.registry.value("x_total") == 1

    def test_truthiness(self):
        assert Observability()
        assert not NULL

    def test_null_sink_accepts_everything(self):
        NULL.counter("x").inc(5)
        NULL.gauge("y").set(1)
        NULL.histogram("z").observe(2)
        with NULL.span("s", start_sample=0) as span:
            assert span is None
        assert NULL.record("r", 0.1) is None
