"""Tests for repro.util.db."""

import numpy as np
import pytest

from repro.util.db import db_to_linear, linear_to_db, power_db, snr_db


class TestConversions:
    def test_zero_db_is_unity(self):
        assert db_to_linear(0.0) == pytest.approx(1.0)

    def test_ten_db_is_factor_ten(self):
        assert db_to_linear(10.0) == pytest.approx(10.0)

    def test_negative_db(self):
        assert db_to_linear(-30.0) == pytest.approx(1e-3)

    def test_round_trip(self):
        for value in (0.001, 0.5, 1.0, 42.0, 1e6):
            assert db_to_linear(linear_to_db(value)) == pytest.approx(value)

    def test_array_input(self):
        out = db_to_linear(np.array([0.0, 10.0, 20.0]))
        assert np.allclose(out, [1.0, 10.0, 100.0])

    def test_linear_to_db_floors_zero(self):
        assert np.isfinite(linear_to_db(0.0))

    def test_linear_to_db_floors_negative(self):
        assert np.isfinite(linear_to_db(-5.0))


class TestPowerDb:
    def test_unit_tone(self):
        tone = np.exp(1j * np.linspace(0, 20, 1000))
        assert power_db(tone) == pytest.approx(0.0, abs=1e-6)

    def test_scaling(self):
        tone = 2.0 * np.exp(1j * np.linspace(0, 20, 1000))
        assert power_db(tone) == pytest.approx(linear_to_db(4.0), abs=1e-6)

    def test_empty_is_floor(self):
        assert power_db(np.zeros(0)) < -200


class TestSnrDb:
    def test_equal_powers(self):
        assert snr_db(1.0, 1.0) == pytest.approx(0.0)

    def test_ratio(self):
        assert snr_db(100.0, 1.0) == pytest.approx(20.0)

    def test_rejects_zero_noise(self):
        with pytest.raises(ValueError):
            snr_db(1.0, 0.0)
