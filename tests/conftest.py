"""Shared fixtures: rendered scenarios are expensive, so they are cached
at session scope and treated as read-only by tests."""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BluetoothL2PingSession,
    RFDumpMonitor,
    Scenario,
    WifiPingSession,
)


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def wifi_trace():
    """A short 802.11 unicast-ping trace at comfortable SNR."""
    scenario = Scenario(duration=0.08, seed=7)
    scenario.add(WifiPingSession(n_pings=3, snr_db=20.0, interval=22e-3, seed=3))
    return scenario.render()


@pytest.fixture(scope="session")
def bluetooth_trace():
    """An l2ping trace long enough to land a few packets in band."""
    scenario = Scenario(duration=0.4, seed=8)
    scenario.add(
        BluetoothL2PingSession(n_pings=50, snr_db=20.0, interval_slots=12)
    )
    return scenario.render()


@pytest.fixture(scope="session")
def mixed_trace():
    """Wi-Fi + Bluetooth simultaneously (the Table 3 shape, miniature)."""
    scenario = Scenario(duration=0.3, seed=9)
    scenario.add(WifiPingSession(n_pings=8, snr_db=20.0, interval=30e-3, seed=4))
    scenario.add(
        BluetoothL2PingSession(n_pings=40, snr_db=20.0, interval_slots=12)
    )
    return scenario.render()


@pytest.fixture(scope="session")
def wifi_report(wifi_trace):
    """RFDump full-pipeline report over the Wi-Fi trace."""
    return RFDumpMonitor().process(wifi_trace.buffer)
