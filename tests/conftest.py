"""Shared fixtures: rendered scenarios are expensive, so they are cached
at session scope and treated as read-only by tests.

``pytest --sanitize`` additionally installs the runtime lock-order
sanitizer (:mod:`repro.sanitize`) for the whole session: every lock the
hub, daemon, shard broker, parallel stage and observability layer
create through :mod:`repro.sanitize.hooks` becomes a recording wrapper
feeding one cumulative acquisition-order graph.  An autouse fixture
fails the test that produced any new violation (order cycle, unbounded
held-lock wait, re-acquisition), and the terminal summary prints the
observed edges so CI logs document the discipline the suite actually
exercised.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro import (
    BluetoothL2PingSession,
    RFDumpMonitor,
    Scenario,
    WifiPingSession,
)
from repro.sanitize import hooks as sanitize_hooks


def pytest_addoption(parser):
    parser.addoption(
        "--sanitize", action="store_true", default=False,
        help="install the runtime lock-order sanitizer for this session; "
             "any observed lock-order cycle, unbounded held-lock wait or "
             "re-acquisition fails the test that produced it",
    )


def pytest_configure(config):
    if config.getoption("--sanitize"):
        config._lock_sanitizer = sanitize_hooks.install()


def pytest_unconfigure(config):
    if getattr(config, "_lock_sanitizer", None) is not None:
        sanitize_hooks.uninstall()
        config._lock_sanitizer = None


@pytest.fixture(autouse=True)
def _sanitizer_check(request):
    """Attribute sanitizer violations to the test that produced them."""
    sanitizer = getattr(request.config, "_lock_sanitizer", None)
    if sanitizer is None:
        yield
        return
    before = len(sanitizer.violations)
    yield
    fresh = sanitizer.violations[before:]
    if fresh:
        pytest.fail(
            "lock-order sanitizer observed new violation(s) during this "
            "test:\n" + "\n".join(v.format() for v in fresh),
            pytrace=False,
        )


def pytest_terminal_summary(terminalreporter, exitstatus, config):
    sanitizer = getattr(config, "_lock_sanitizer", None)
    if sanitizer is None:
        return
    terminalreporter.section("lock-order sanitizer")
    terminalreporter.write_line(sanitizer.report().format())


@pytest.fixture
def rng():
    return np.random.default_rng(1234)


@pytest.fixture(scope="session")
def wifi_trace():
    """A short 802.11 unicast-ping trace at comfortable SNR."""
    scenario = Scenario(duration=0.08, seed=7)
    scenario.add(WifiPingSession(n_pings=3, snr_db=20.0, interval=22e-3, seed=3))
    return scenario.render()


@pytest.fixture(scope="session")
def bluetooth_trace():
    """An l2ping trace long enough to land a few packets in band."""
    scenario = Scenario(duration=0.4, seed=8)
    scenario.add(
        BluetoothL2PingSession(n_pings=50, snr_db=20.0, interval_slots=12)
    )
    return scenario.render()


@pytest.fixture(scope="session")
def mixed_trace():
    """Wi-Fi + Bluetooth simultaneously (the Table 3 shape, miniature)."""
    scenario = Scenario(duration=0.3, seed=9)
    scenario.add(WifiPingSession(n_pings=8, snr_db=20.0, interval=30e-3, seed=4))
    scenario.add(
        BluetoothL2PingSession(n_pings=40, snr_db=20.0, interval_slots=12)
    )
    return scenario.render()


@pytest.fixture(scope="session")
def wifi_report(wifi_trace):
    """RFDump full-pipeline report over the Wi-Fi trace."""
    return RFDumpMonitor().process(wifi_trace.buffer)
