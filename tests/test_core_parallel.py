"""Tests for the real parallel analysis stage (repro.core.parallel)."""

import threading
import time

import pytest

from repro import RFDumpMonitor
from repro.analysis.decoders import PacketRecord
from repro.core.accounting import StageClock
from repro.core.dispatcher import DispatchedRange
from repro.core.parallel import (
    AnalysisTask,
    ParallelAnalysisStage,
    decode_task,
    packet_sort_key,
)
from repro.core.streaming import StreamingMonitor
from repro.dsp.samples import SampleBuffer


def _packet_key(p):
    """Everything observable about a packet (minus the decoded object)."""
    return (
        p.protocol, p.start_sample, p.end_sample, p.ok, p.decoder,
        p.payload_size, p.rate_mbps, p.channel,
        sorted((k, v) for k, v in p.info.items()),
    )


def _windows(buffer, size):
    return [
        buffer.slice(lo, min(lo + size, len(buffer)))
        for lo in range(0, len(buffer), size)
    ]


@pytest.fixture(scope="module")
def serial_report(mixed_trace):
    return RFDumpMonitor().process(mixed_trace.buffer)


class _FakeDecoder:
    """Emits one packet per scanned range; can misbehave off-main-thread."""

    def __init__(self, fail_in_worker=False, sleep_in_worker=0.0):
        self.fail_in_worker = fail_in_worker
        self.sleep_in_worker = sleep_in_worker

    def scan(self, buffer, **kwargs):
        if threading.current_thread() is not threading.main_thread():
            if self.fail_in_worker:
                raise RuntimeError("worker crash")
            if self.sleep_in_worker:
                time.sleep(self.sleep_in_worker)
        return [
            PacketRecord(
                protocol="wifi", start_sample=buffer.start_sample,
                end_sample=buffer.end_sample, ok=True, decoder="fake",
            )
        ]


def _fake_inputs(n_ranges=3, span=1000):
    buffer = SampleBuffer.from_array([0j] * (n_ranges * span))
    ranges = {
        "wifi": [
            DispatchedRange(start_sample=i * span, end_sample=(i + 1) * span)
            for i in range(n_ranges)
        ]
    }
    return buffer, ranges


class TestStageValidation:
    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            ParallelAnalysisStage({}, workers=0)

    def test_rejects_unknown_backend(self):
        with pytest.raises(ValueError):
            ParallelAnalysisStage({}, backend="coroutine")

    def test_rejects_unknown_granularity(self):
        with pytest.raises(ValueError):
            ParallelAnalysisStage({}, granularity="packet")

    def test_rejects_bad_timeout(self):
        with pytest.raises(ValueError):
            ParallelAnalysisStage({}, timeout_per_range=0.0)

    def test_monitor_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            RFDumpMonitor(workers=0)


class TestScheduling:
    def test_protocol_granularity_one_task_per_protocol(self):
        buffer, ranges = _fake_inputs(4)
        stage = ParallelAnalysisStage({"wifi": _FakeDecoder()})
        tasks = stage.tasks_for(buffer, ranges)
        assert [t.protocol for t in tasks] == ["wifi"]
        assert tasks[0].n_ranges == 4
        assert tasks[0].samples == 4000

    def test_range_granularity_one_task_per_range(self):
        buffer, ranges = _fake_inputs(4)
        stage = ParallelAnalysisStage({"wifi": _FakeDecoder()}, granularity="range")
        tasks = stage.tasks_for(buffer, ranges)
        assert len(tasks) == 4
        assert all(t.n_ranges == 1 for t in tasks)

    def test_none_decoders_skipped(self):
        buffer, ranges = _fake_inputs(2)
        ranges["microwave"] = [DispatchedRange(0, 1000)]
        stage = ParallelAnalysisStage({"wifi": _FakeDecoder(), "microwave": None})
        tasks = stage.tasks_for(buffer, ranges)
        assert [t.protocol for t in tasks] == ["wifi"]

    def test_decode_task_accounts_samples(self):
        buffer, ranges = _fake_inputs(3)
        task = AnalysisTask(
            "wifi", [(buffer.slice(r.start_sample, r.end_sample), None)
                     for r in ranges["wifi"]],
        )
        outcome = decode_task(_FakeDecoder(), task)
        assert len(outcome.packets) == 3
        assert outcome.clock.samples_touched["demodulation"] == 3000
        assert outcome.clock.seconds["demodulation"] >= 0.0


class TestSerialParallelEquivalence:
    """Acceptance: the Table 3 traffic-mix shape decodes identically."""

    @pytest.mark.parametrize("granularity", ["protocol", "range"])
    def test_thread_backend_matches_serial(self, mixed_trace, serial_report,
                                           granularity):
        with RFDumpMonitor(workers=4, parallel_granularity=granularity) as monitor:
            report = monitor.process(mixed_trace.buffer)
        assert [_packet_key(p) for p in report.packets] == [
            _packet_key(p) for p in serial_report.packets
        ]
        assert report.parallel_fallbacks == 0
        assert [
            (c.peak.start_sample, c.detector) for c in report.classifications
        ] == [
            (c.peak.start_sample, c.detector)
            for c in serial_report.classifications
        ]

    def test_process_backend_matches_serial(self, mixed_trace, serial_report):
        with RFDumpMonitor(workers=2, parallel_backend="process") as monitor:
            report = monitor.process(mixed_trace.buffer)
        assert [_packet_key(p) for p in report.packets] == [
            _packet_key(p) for p in serial_report.packets
        ]

    def test_serial_output_is_sorted(self, serial_report):
        keys = [packet_sort_key(p) for p in serial_report.packets]
        assert keys == sorted(keys)

    def test_streaming_parallel_matches_streaming_serial(self, mixed_trace):
        def run(workers):
            with StreamingMonitor(RFDumpMonitor(workers=workers)) as stream:
                stream.run(_windows(mixed_trace.buffer, 500_000))
            return stream.packets

        serial, parallel = run(1), run(3)
        assert [_packet_key(p) for p in parallel] == [
            _packet_key(p) for p in serial
        ]


class TestAccounting:
    def test_worker_clocks_merge_into_report(self, mixed_trace):
        with RFDumpMonitor(workers=3) as monitor:
            report = monitor.process(mixed_trace.buffer)
        assert report.clock.seconds["demodulation"] > 0
        assert report.clock.seconds["demodulation_wall"] > 0
        assert report.clock.samples_touched["demodulation"] > 0
        assert set(report.demod_seconds_by_protocol) == {"wifi", "bluetooth"}
        # worker CPU across protocols adds up like a serial run's would
        assert sum(report.demod_seconds_by_protocol.values()) == pytest.approx(
            report.clock.seconds["demodulation"], rel=0.05
        )

    def test_parallel_samples_touched_match_serial(self, mixed_trace,
                                                   serial_report):
        with RFDumpMonitor(workers=3, parallel_granularity="range") as monitor:
            report = monitor.process(mixed_trace.buffer)
        assert (
            report.clock.samples_touched["demodulation"]
            == serial_report.clock.samples_touched["demodulation"]
        )


class TestFallback:
    def test_worker_failure_falls_back_to_serial(self):
        buffer, ranges = _fake_inputs(3)
        stage = ParallelAnalysisStage(
            {"wifi": _FakeDecoder(fail_in_worker=True)},
            workers=2, granularity="range",
        )
        with stage:
            packets, demod, fallbacks = stage.run(buffer, ranges)
        assert fallbacks == 3
        assert stage.fallbacks == 3
        assert len(packets) == 3  # nothing dropped
        assert demod["wifi"] >= 0.0

    def test_timeout_falls_back_to_serial(self):
        buffer, ranges = _fake_inputs(1)
        stage = ParallelAnalysisStage(
            {"wifi": _FakeDecoder(sleep_in_worker=1.0)},
            workers=2, timeout_per_range=0.05,
        )
        packets, _, fallbacks = stage.run(buffer, ranges)
        stage._discard_executor()  # don't wait out the sleeping worker
        assert fallbacks == 1
        assert len(packets) == 1

    def test_fallbacks_surface_in_report(self, wifi_trace):
        monitor = RFDumpMonitor(protocols=("wifi",), workers=2)
        monitor._parallel.decoders["wifi"] = _FakeDecoder(fail_in_worker=True)
        monitor._decoders["wifi"] = _FakeDecoder(fail_in_worker=True)
        with monitor:
            report = monitor.process(wifi_trace.buffer)
        assert report.parallel_fallbacks > 0

    def test_deterministic_order_despite_fallbacks(self):
        buffer, ranges = _fake_inputs(5)
        stage = ParallelAnalysisStage(
            {"wifi": _FakeDecoder(fail_in_worker=True)},
            workers=2, granularity="range",
        )
        with stage:
            packets, _, _ = stage.run(buffer, ranges)
        assert [p.start_sample for p in packets] == [0, 1000, 2000, 3000, 4000]


class TestLifecycle:
    def test_close_then_reuse_rebuilds_pool(self):
        buffer, ranges = _fake_inputs(2)
        stage = ParallelAnalysisStage({"wifi": _FakeDecoder()}, workers=2)
        first, _, _ = stage.run(buffer, ranges)
        stage.close()
        assert stage._executor is None
        second, _, _ = stage.run(buffer, ranges)
        stage.close()
        assert [p.start_sample for p in first] == [p.start_sample for p in second]

    def test_serial_monitor_close_is_noop(self):
        monitor = RFDumpMonitor()
        assert monitor.parallel_stage is None
        monitor.close()  # must not raise
