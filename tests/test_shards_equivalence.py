"""Serial-vs-sharded equivalence (the broker's core guarantee).

The acceptance bar for the sharded service: an N-shard run's merged
report carries *identical* classified packets to a single-monitor run
over the same windows, for N in {2, 4, 8}, including a transmission
sitting exactly on a shard boundary (energy in both neighbors' sub-bands
is demodulated twice and de-duplicated, never lost).
"""

import numpy as np
import pytest

from repro.core.config import MonitorConfig
from repro.core.monitor import make_monitor
from repro.core.shards import BandSplitter, ShardBroker
from repro.core.streaming import StreamingMonitor
from repro.dsp.samples import SampleBuffer
from repro.faults.harness import preset_windows, split_windows
from repro.obs import Observability
from repro.phy.bluetooth import BluetoothModulator, TYPE_DH1
from repro.util.timebase import Timebase

FS = 8e6
WINDOW = 160_000
OVERLAP = 48_000


def _packet_key(p):
    return (p.start_sample, p.end_sample, p.protocol, p.decoder, p.channel,
            p.ok, p.payload_size, p.rate_mbps)


def _cls_key(c):
    return (c.peak.start_sample, c.peak.end_sample, c.protocol, c.detector,
            c.channel)


def boundary_straddle_windows(seed=11, n_windows=2):
    """A seeded stream whose one Bluetooth burst sits at band center —
    exactly on the sub-band boundary every even shard count splits at."""
    wave = BluetoothModulator(FS).modulate(TYPE_DH1, b"edge" * 6, clock=5)
    rng = np.random.default_rng(seed)
    n = n_windows * WINDOW
    rx = 0.05 * (rng.normal(size=n) + 1j * rng.normal(size=n))
    at = WINDOW // 2
    rx[at : at + wave.size] += wave  # baseband = band center = channel 3|4 edge
    buffer = SampleBuffer(rx.astype(np.complex64), Timebase(FS))
    return split_windows(buffer, WINDOW), buffer, (at, at + wave.size)


@pytest.fixture(scope="module")
def mix_windows():
    return preset_windows("mix", duration=0.08, window_samples=WINDOW, seed=7)


@pytest.fixture(scope="module")
def single_run(mix_windows):
    monitor = StreamingMonitor(config=MonitorConfig(), overlap=OVERLAP)
    for window in mix_windows:
        monitor.process(window)
    monitor.flush()
    return monitor


class TestEquivalence:
    @pytest.mark.parametrize("nshards", [2, 4, 8])
    def test_merged_output_identical_to_serial(self, mix_windows, single_run,
                                               nshards):
        broker = ShardBroker(config=MonitorConfig(shards=nshards),
                             overlap=OVERLAP)
        for window in mix_windows:
            broker.process(window)
        broker.flush()
        assert [_packet_key(p) for p in broker.packets] == \
               [_packet_key(p) for p in single_run.packets]
        assert sorted(_cls_key(c) for c in broker.classifications) == \
               sorted(_cls_key(c) for c in single_run.classifications)
        assert len(single_run.packets) > 0  # the comparison is non-vacuous

    def test_wideband_ranges_demodulated_by_all_and_deduped(self, mix_windows):
        # 802.11 energy smears across every sub-band, so every shard
        # demodulates it; the merge must collapse the copies
        obs = Observability()
        broker = ShardBroker(config=MonitorConfig(shards=4, obs=obs),
                             overlap=OVERLAP)
        for window in mix_windows:
            broker.process(window)
        broker.flush()
        assert obs.registry.value("rfdump_shard_merge_dedup_total") > 0

    def test_per_window_reports_match_serial(self, mix_windows):
        serial = StreamingMonitor(config=MonitorConfig(), overlap=OVERLAP)
        broker = ShardBroker(config=MonitorConfig(shards=4), overlap=OVERLAP)
        for window in mix_windows:
            a = serial.process(window)
            b = broker.process(window)
            assert [_packet_key(p) for p in b.packets] == \
                   [_packet_key(p) for p in a.packets]
            assert b.total_samples == a.total_samples
            assert b.noise_floor == pytest.approx(a.noise_floor)

    def test_boundary_straddling_burst_not_lost_or_duplicated(self):
        windows, buffer, (lo, hi) = boundary_straddle_windows()
        # the burst's energy really does straddle the 2-shard boundary
        splitter = BandSplitter(2)
        active = splitter.active_channels(buffer, lo, hi)
        assert active & frozenset(splitter.home_channels(0))
        assert active & frozenset(splitter.home_channels(1))

        serial = StreamingMonitor(config=MonitorConfig(), overlap=OVERLAP)
        broker = ShardBroker(config=MonitorConfig(shards=2), overlap=OVERLAP)
        for window in windows:
            serial.process(window)
            broker.process(window)
        serial.flush()
        broker.flush()
        assert [_packet_key(p) for p in broker.packets] == \
               [_packet_key(p) for p in serial.packets]
        assert sorted(_cls_key(c) for c in broker.classifications) == \
               sorted(_cls_key(c) for c in serial.classifications)
        # the burst was classified at all (non-vacuous straddle case)
        assert any(c.protocol == "bluetooth" and
                   lo <= c.peak.start_sample < hi
                   for c in serial.classifications)

    def test_merged_report_totals(self, mix_windows):
        broker = ShardBroker(config=MonitorConfig(shards=2), overlap=OVERLAP)
        for window in mix_windows:
            broker.process(window)
        broker.flush()
        report = broker.merged_report()
        assert report.total_samples == sum(len(w) for w in mix_windows)
        assert [_packet_key(p) for p in report.packets] == \
               [_packet_key(p) for p in broker.packets]


class TestFactoryAndConfig:
    def test_make_monitor_sharded(self):
        monitor = make_monitor("sharded", MonitorConfig(shards=3))
        assert isinstance(monitor, ShardBroker)
        assert monitor.nshards == 3

    def test_shards_kwarg_overrides_config(self):
        monitor = make_monitor("sharded", MonitorConfig(shards=2), shards=5)
        assert monitor.nshards == 5

    def test_config_rejects_bad_shards(self):
        with pytest.raises(ValueError):
            MonitorConfig(shards=0)

    def test_single_shard_degenerates_to_unfiltered(self):
        broker = ShardBroker(config=MonitorConfig(shards=1))
        assert broker.workers[0].monitor.monitor._range_filter is None

    def test_worker_configs_are_independent_domains(self):
        broker = ShardBroker(config=MonitorConfig(shards=2, on_error="skip"))
        for worker in broker.workers:
            assert worker.config.shards == 1
            assert worker.config.on_error == "skip"
            assert worker.config.obs is None
        inner = [w.monitor.monitor for w in broker.workers]
        assert inner[0] is not inner[1]
        assert inner[0].detectors is not inner[1].detectors


class TestBandSplitter:
    def test_home_channels_partition_the_band(self):
        for nshards in (1, 2, 3, 4, 8):
            splitter = BandSplitter(nshards)
            seen = []
            for shard in range(nshards):
                channels = splitter.home_channels(shard)
                assert channels  # every shard owns at least one sub-band
                assert list(channels) == sorted(channels)  # contiguous
                seen.extend(channels)
            assert sorted(seen) == list(range(8))

    def test_initial_ownership_matches_home_channels(self):
        splitter = BandSplitter(4)
        owner = splitter.initial_ownership()
        for shard in range(4):
            for channel in splitter.home_channels(shard):
                assert owner[channel] == shard

    def test_validation(self):
        with pytest.raises(ValueError):
            BandSplitter(0)
        with pytest.raises(ValueError):
            BandSplitter(9, nchannels=8)
        with pytest.raises(ValueError):
            BandSplitter(2, fft_size=100)  # not a multiple of nchannels
        with pytest.raises(ValueError):
            BandSplitter(2, occupancy_fraction=0.0)

    def _tone_buffer(self, freq, n=8192):
        x = np.exp(2j * np.pi * freq * np.arange(n) / FS)
        return SampleBuffer(x.astype(np.complex64), Timebase(FS))

    def test_active_channels_single_tone(self):
        splitter = BandSplitter(4)
        # center of sub-band 6 of 8: (6 + 0.5) MHz - 4 MHz = +2.5 MHz
        buf = self._tone_buffer(2.5e6)
        assert splitter.active_channels(buf, 0, 8192) == frozenset({6})

    def test_active_channels_boundary_emission_activates_both(self):
        splitter = BandSplitter(2)
        # a narrowband emission straddling the channel 5|6 edge at
        # +2.0 MHz puts comparable power on both sides
        n = 8192
        t = np.arange(n) / FS
        x = (np.exp(2j * np.pi * 1.98e6 * t) +
             np.exp(2j * np.pi * 2.02e6 * t))
        buf = SampleBuffer(x.astype(np.complex64), Timebase(FS))
        active = splitter.active_channels(buf, 0, n)
        assert {5, 6} <= set(active)

    def test_active_channels_noise_has_an_owner(self, rng):
        splitter = BandSplitter(4)
        x = (rng.normal(size=4096) + 1j * rng.normal(size=4096))
        buf = SampleBuffer(x.astype(np.complex64), Timebase(FS))
        assert len(splitter.active_channels(buf, 0, 4096)) >= 1

    def test_active_channels_tiny_range_owned_by_channel_zero(self):
        splitter = BandSplitter(4)
        buf = self._tone_buffer(2.5e6, n=64)
        assert splitter.active_channels(buf, 0, 4) == frozenset({0})
        assert splitter.active_channels(buf, 0, 0) == frozenset()

    def test_subband_streams_reconstruct_and_isolate(self):
        splitter = BandSplitter(4)
        buf = self._tone_buffer(2.5e6, n=4096)  # lives in sub-band 6
        streams = splitter.subband_streams(buf)
        assert len(streams) == 4
        total = sum(s.samples for s in streams)
        np.testing.assert_allclose(total, buf.samples, atol=1e-3)
        powers = [float(np.sum(np.abs(s.samples) ** 2)) for s in streams]
        # sub-band 6 is shard 3's home (channels 6,7): all energy there
        assert powers[3] > 0.99 * sum(powers)
        for stream in streams:
            assert stream.start_sample == buf.start_sample
