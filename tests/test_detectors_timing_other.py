"""Tests for the ZigBee and microwave timing detectors."""

import numpy as np
import pytest

from repro.constants import (
    MICROWAVE_AC_PERIOD_60HZ,
    ZIGBEE_BACKOFF_PERIOD,
    ZIGBEE_LIFS,
    ZIGBEE_T_ACK,
)
from repro.core.detectors import MicrowaveTimingDetector, ZigbeeTimingDetector
from repro.core.metadata import PeakHistory
from repro.core.peak_detector import PeakDetectionResult

FS = 8e6


def _detection(entries):
    """entries: list of (start_sample, length, mean_power)."""
    history = PeakHistory(FS)
    for start, length, power in entries:
        history.append(int(start), int(start + length), power, power)
    return PeakDetectionResult(
        history=history, chunks=[], noise_floor=1.0, threshold=2.5,
        total_samples=int(entries[-1][0] + entries[-1][1]) + 1000 if entries else 0,
    )


def _gap_pair(gap_seconds, length=3000):
    first_end = 1000 + length
    second_start = first_end + int(gap_seconds * FS)
    return _detection([(1000, length, 10.0), (second_start, length, 10.0)])


class TestZigbee:
    def test_t_ack_gap(self):
        out = ZigbeeTimingDetector().classify(_gap_pair(ZIGBEE_T_ACK), None)
        assert len(out) == 2
        assert out[0].info["pattern"] in ("tACK", "SIFS")

    def test_lifs_gap(self):
        out = ZigbeeTimingDetector().classify(_gap_pair(ZIGBEE_LIFS), None)
        assert len(out) == 2

    def test_backoff_multiples(self):
        out = ZigbeeTimingDetector().classify(
            _gap_pair(3 * ZIGBEE_BACKOFF_PERIOD), None
        )
        assert len(out) == 2
        assert "backoff" in out[0].info["pattern"]

    def test_unrelated_gap_rejected(self):
        out = ZigbeeTimingDetector().classify(_gap_pair(777e-6), None)
        assert out == []

    def test_max_backoffs_bound(self):
        det = ZigbeeTimingDetector(max_backoffs=4)
        out = det.classify(_gap_pair(6 * ZIGBEE_BACKOFF_PERIOD), None)
        assert out == []

    def test_empty_history(self):
        out = ZigbeeTimingDetector().classify(_detection([]), None)
        assert out == []


class TestMicrowave:
    def _bursts(self, n=4, period=MICROWAVE_AC_PERIOD_60HZ, power=10.0,
                duration=8e-3):
        length = int(duration * FS)
        return _detection(
            [(1000 + int(i * period * FS), length, power) for i in range(n)]
        )

    def test_detects_ac_periodicity(self):
        out = MicrowaveTimingDetector().classify(self._bursts(), None)
        assert {c.peak.index for c in out} == {0, 1, 2, 3}
        assert out[0].info["ac_hz"] == 60

    def test_50hz_also_detected(self):
        out = MicrowaveTimingDetector().classify(
            self._bursts(period=0.02), None
        )
        assert len(out) == 4
        assert out[0].info["ac_hz"] == 50

    def test_short_peaks_ignored(self):
        out = MicrowaveTimingDetector().classify(
            self._bursts(duration=1e-3), None
        )
        assert out == []

    def test_wrong_period_rejected(self):
        out = MicrowaveTimingDetector().classify(
            self._bursts(period=0.012), None
        )
        assert out == []

    def test_varying_power_rejected(self):
        # constant-envelope check: alternate strong and weak long bursts
        period = MICROWAVE_AC_PERIOD_60HZ
        length = int(8e-3 * FS)
        entries = [
            (1000 + int(i * period * FS), length, 10.0 if i % 2 else 40.0)
            for i in range(4)
        ]
        out = MicrowaveTimingDetector().classify(_detection(entries), None)
        assert out == []

    def test_bluetooth_not_matched(self):
        # 625 us slots are far from the AC period
        out = MicrowaveTimingDetector().classify(
            self._bursts(period=625e-6, duration=2.8e-3), None
        )
        assert out == []
