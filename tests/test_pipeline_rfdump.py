"""Tests for the full RFDump pipeline (repro.core.pipeline)."""

import numpy as np
import pytest

from repro import RFDumpMonitor, packet_miss_rate
from repro.core.detectors import (
    BluetoothTimingDetector,
    DbpskPhaseDetector,
    GfskPhaseDetector,
    WifiDifsTimingDetector,
    WifiSifsTimingDetector,
)
from repro.core.pipeline import default_detectors


class TestDefaultDetectors:
    def test_timing_and_phase(self):
        dets = default_detectors(("wifi", "bluetooth"), ("timing", "phase"))
        kinds = {type(d) for d in dets}
        assert kinds == {
            WifiSifsTimingDetector, WifiDifsTimingDetector, DbpskPhaseDetector,
            BluetoothTimingDetector, GfskPhaseDetector,
        }

    def test_timing_only(self):
        dets = default_detectors(("wifi",), ("timing",))
        assert {type(d) for d in dets} == {
            WifiSifsTimingDetector, WifiDifsTimingDetector,
        }

    def test_all_protocols_have_defaults(self):
        dets = default_detectors(
            ("wifi", "bluetooth", "zigbee", "microwave"), ("timing", "phase")
        )
        assert len(dets) >= 6

    def test_unknown_protocol_rejected(self):
        with pytest.raises(ValueError):
            default_detectors(("lorawan",), ("timing",))


class TestReport:
    def test_classifications_found(self, wifi_report, wifi_trace):
        truth = wifi_trace.ground_truth
        miss = packet_miss_rate(
            truth, wifi_report.classifications_for("wifi"), "wifi"
        )
        assert miss == 0.0

    def test_packets_decoded(self, wifi_report, wifi_trace):
        truth = wifi_trace.ground_truth.observable("wifi")
        assert len(wifi_report.packets_for("wifi")) == len(truth)

    def test_forwarded_less_than_total(self, wifi_report):
        forwarded = wifi_report.forwarded_samples("wifi")
        assert 0 < forwarded < wifi_report.total_samples

    def test_forwarding_bounded_by_chunk_granularity(self, wifi_report, wifi_trace):
        # forwarded samples should be within a few chunks per packet of the
        # true on-air time
        truth = wifi_trace.ground_truth.observable("wifi")
        on_air = sum(t.duration for t in truth) * 8e6
        slack = len(truth) * 3 * 200
        assert wifi_report.forwarded_samples("wifi") <= on_air + slack

    def test_stage_clock_populated(self, wifi_report):
        assert "peak_detection" in wifi_report.clock.seconds
        assert "demodulation" in wifi_report.clock.seconds
        assert wifi_report.cpu_over_realtime > 0

    def test_noise_floor_estimated(self, wifi_report):
        assert wifi_report.noise_floor == pytest.approx(1.0, rel=0.3)

    def test_peaks_cover_truth(self, wifi_report, wifi_trace):
        truth = wifi_trace.ground_truth.observable("wifi")
        assert len(wifi_report.peaks) >= len(truth)


class TestConfigurations:
    def test_no_demodulation_mode(self, wifi_trace):
        mon = RFDumpMonitor(kinds=("timing",), demodulate=False)
        report = mon.process(wifi_trace.buffer)
        assert report.packets == []
        assert "demodulation" not in report.clock.seconds
        assert report.classifications

    def test_timing_only_detects_unicast(self, wifi_trace):
        mon = RFDumpMonitor(kinds=("timing",), demodulate=False)
        report = mon.process(wifi_trace.buffer)
        miss = packet_miss_rate(
            wifi_trace.ground_truth, report.classifications_for("wifi"), "wifi"
        )
        assert miss < 0.05

    def test_phase_only_detects_unicast(self, wifi_trace):
        mon = RFDumpMonitor(kinds=("phase",), demodulate=False)
        report = mon.process(wifi_trace.buffer)
        miss = packet_miss_rate(
            wifi_trace.ground_truth, report.classifications_for("wifi"), "wifi"
        )
        assert miss < 0.05

    def test_custom_detectors(self, wifi_trace):
        mon = RFDumpMonitor(
            detectors=[WifiSifsTimingDetector()], demodulate=False
        )
        report = mon.process(wifi_trace.buffer)
        assert all(
            c.detector == "WifiSifsTimingDetector" for c in report.classifications
        )

    def test_fixed_noise_floor(self, wifi_trace):
        mon = RFDumpMonitor(demodulate=False, noise_floor=1.0)
        report = mon.process(wifi_trace.buffer)
        assert report.noise_floor == 1.0

    def test_headers_only_analyzer(self, wifi_trace):
        mon = RFDumpMonitor(protocols=("wifi",), decode_payload=False)
        report = mon.process(wifi_trace.buffer)
        assert report.packets
        assert all(p.decoded.header_only for p in report.packets)

    def test_detection_stage_reusable(self, wifi_trace):
        mon = RFDumpMonitor(demodulate=False)
        detection, classifications = mon.detect(wifi_trace.buffer)
        assert len(detection.history) > 0
        assert classifications
