"""Unit tests for the error-policy primitives (repro.core.errorpolicy)."""

import pytest

from repro.core.errorpolicy import (
    ERROR_POLICIES,
    CircuitBreaker,
    ErrorRecord,
    validate_error_policy,
)
from repro.errors import (
    RFDumpError,
    SampleIntegrityError,
    StreamGapError,
    WorkerCrashError,
)


class TestPolicyVocabulary:
    @pytest.mark.parametrize("policy", ERROR_POLICIES)
    def test_known_policies_pass_through(self, policy):
        assert validate_error_policy(policy) == policy

    @pytest.mark.parametrize("policy", ("ignore", "RAISE", "", 0))
    def test_unknown_policies_rejected(self, policy):
        with pytest.raises(ValueError):
            validate_error_policy(policy)


class TestErrorRecord:
    def test_from_exception_captures_type_and_message(self):
        record = ErrorRecord.from_exception(
            stage="analysis", component="wifi",
            exc=RuntimeError("worker died"), action="fallback",
            start_sample=10, end_sample=20,
        )
        assert record.error == "RuntimeError"
        assert record.message == "worker died"
        assert record.action == "fallback"
        assert (record.start_sample, record.end_sample) == (10, 20)


class TestTypedErrors:
    def test_stream_gap_error_is_value_error(self):
        exc = StreamGapError("gap", expected_sample=100, actual_sample=350)
        assert isinstance(exc, RFDumpError)
        assert isinstance(exc, ValueError)
        assert exc.gap_samples == 250

    def test_gap_samples_unknown_without_positions(self):
        assert StreamGapError("gap").gap_samples is None

    def test_integrity_and_worker_errors_carry_context(self):
        assert SampleIntegrityError("bad", bad_samples=7).bad_samples == 7
        assert WorkerCrashError("dead", protocol="wifi").protocol == "wifi"


class TestCircuitBreaker:
    def test_trips_on_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3)
        assert breaker.record_failure("det") is False
        assert breaker.record_failure("det") is False
        assert breaker.record_failure("det") is True  # the tripping one
        assert breaker.is_open("det")
        assert breaker.open_components == ("det",)
        # further failures don't re-trip
        assert breaker.record_failure("det") is False

    def test_success_resets_the_streak(self):
        breaker = CircuitBreaker(threshold=2)
        breaker.record_failure("det")
        breaker.record_success("det")
        breaker.record_failure("det")
        assert not breaker.is_open("det")

    def test_components_tracked_independently(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a")
        assert breaker.is_open("a")
        assert not breaker.is_open("b")

    def test_reset_one_and_all(self):
        breaker = CircuitBreaker(threshold=1)
        breaker.record_failure("a")
        breaker.record_failure("b")
        breaker.reset("a")
        assert breaker.open_components == ("b",)
        breaker.reset()
        assert breaker.open_components == ()

    def test_rejects_bad_threshold(self):
        with pytest.raises(ValueError):
            CircuitBreaker(threshold=0)
