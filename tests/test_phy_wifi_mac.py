"""Tests for repro.phy.wifi_mac."""

import pytest

from repro.errors import ChecksumError, DecodeError
from repro.phy.wifi_mac import (
    BROADCAST,
    build_ack_frame,
    build_beacon_frame,
    build_data_frame,
    build_icmp_payload,
    parse_mac_frame,
)


class TestDataFrame:
    def test_round_trip(self):
        frame = build_data_frame(1, 2, b"hello", seq=42)
        parsed = parse_mac_frame(frame)
        assert parsed.is_data
        assert parsed.fcs_ok
        assert parsed.seq == 42
        assert parsed.body == b"hello"

    def test_length(self):
        frame = build_data_frame(1, 2, b"x" * 100)
        assert len(frame) == 24 + 100 + 4

    def test_string_addresses(self):
        frame = build_data_frame("node-a", "node-b", b"payload")
        parsed = parse_mac_frame(frame)
        assert parsed.addr1 != parsed.addr2

    def test_byte_addresses(self):
        src = b"\x02\x00\x00\x00\x00\x01"
        frame = build_data_frame(src, BROADCAST, b"")
        parsed = parse_mac_frame(frame)
        assert parsed.addr2 == src
        assert parsed.is_broadcast

    def test_rejects_bad_mac_length(self):
        with pytest.raises(ValueError):
            build_data_frame(b"\x00\x01", 2, b"")

    def test_fcs_corruption_detected(self):
        frame = bytearray(build_data_frame(1, 2, b"data"))
        frame[10] ^= 0xFF
        with pytest.raises(ChecksumError):
            parse_mac_frame(bytes(frame))


class TestAckFrame:
    def test_round_trip(self):
        frame = build_ack_frame(7)
        parsed = parse_mac_frame(frame)
        assert parsed.is_ack
        assert not parsed.is_data
        assert parsed.addr2 is None

    def test_length_14(self):
        assert len(build_ack_frame(1)) == 14


class TestBeacon:
    def test_round_trip(self):
        frame = build_beacon_frame("ap", seq=3, ssid=b"testnet")
        parsed = parse_mac_frame(frame)
        assert parsed.is_beacon
        assert parsed.is_broadcast
        assert b"testnet" in parsed.body


class TestIcmpPayload:
    def test_size(self):
        assert len(build_icmp_payload("echo-request", 0, 500)) == 500

    def test_sequence_recoverable(self):
        payload = build_icmp_payload("echo-reply", 1234, 64)
        assert payload.startswith(b"ICMPEREP")

    def test_rejects_tiny_size(self):
        with pytest.raises(ValueError):
            build_icmp_payload("echo-request", 0, 4)

    def test_rejects_unknown_kind(self):
        with pytest.raises(KeyError):
            build_icmp_payload("nope", 0, 64)


class TestParser:
    def test_rejects_short_frames(self):
        with pytest.raises(DecodeError):
            parse_mac_frame(b"short")

    def test_rejects_truncated_header(self):
        from repro.util.bits import crc32_802
        import struct

        body = struct.pack("<HH", 0x0008, 0) + b"\x00" * 12  # too short for data
        frame = body + struct.pack("<I", crc32_802(body))
        with pytest.raises(DecodeError):
            parse_mac_frame(frame)
