"""Tests for the CampusTraffic and OfdmBurstSource generators."""

import numpy as np
import pytest

from repro import Scenario
from repro.emulator.traffic import CampusTraffic, OfdmBurstSource
from repro.constants import WIFI_SIFS


class TestCampusTraffic:
    @pytest.fixture(scope="class")
    def events(self):
        return CampusTraffic(duration=1.0, seed=19).events()

    def test_no_overlaps(self, events):
        for prev, nxt in zip(events, events[1:]):
            assert nxt.time >= prev.end_time + WIFI_SIFS - 1e-9

    def test_rate_mix(self, events):
        data = [e for e in events if e.kind == "data"]
        rates = {e.rate_mbps for e in data}
        assert rates >= {11.0, 5.5}
        # most data packets are NOT 1 Mbps (the Table 4 premise)
        one = sum(1 for e in data if e.rate_mbps == 1.0)
        assert one < 0.3 * len(data)

    def test_contains_beacons_and_broadcasts(self, events):
        kinds = {e.kind for e in events}
        assert {"beacon", "broadcast", "data"} <= kinds

    def test_acks_follow_data(self, events):
        for prev, nxt in zip(events, events[1:]):
            if nxt.kind == "ack" and nxt.meta.get("seq") == prev.meta.get("seq"):
                assert nxt.time - prev.end_time == pytest.approx(WIFI_SIFS, abs=1e-9)

    def test_deterministic(self):
        a = CampusTraffic(duration=0.3, seed=5).events()
        b = CampusTraffic(duration=0.3, seed=5).events()
        assert [(e.time, e.kind) for e in a] == [(e.time, e.kind) for e in b]

    def test_renders(self):
        scenario = Scenario(duration=0.2, seed=20)
        scenario.add(CampusTraffic(duration=0.2, seed=21))
        trace = scenario.render()
        assert len(trace.ground_truth.observable("wifi")) > 10


class TestOfdmBurstSource:
    def test_event_schedule(self):
        events = OfdmBurstSource(n_packets=5, interval=10e-3, start=2e-3).events()
        assert len(events) == 5
        assert events[0].time == pytest.approx(2e-3)
        assert events[1].time - events[0].time == pytest.approx(10e-3)

    def test_airtime_consistent_with_modem(self):
        from repro.phy.ofdm import OfdmModem

        source = OfdmBurstSource(n_packets=1, payload_size=123)
        event = source.events()[0]
        assert event.duration == pytest.approx(OfdmModem(8e6).airtime(123))

    def test_renders_and_durations_match(self):
        scenario = Scenario(duration=0.05, seed=22)
        scenario.add(OfdmBurstSource(n_packets=3, interval=14e-3, snr_db=20.0))
        trace = scenario.render()
        for tx in trace.ground_truth.observable("ofdm"):
            start = int(tx.start_time * trace.sample_rate)
            end = int(tx.end_time * trace.sample_rate)
            power = np.mean(np.abs(trace.samples[start + 8 : end - 8]) ** 2)
            assert power > 10  # ~20 dB above unit noise
