"""Tests for repro.phy.fec."""

import numpy as np
import pytest

from repro.errors import DecodeError
from repro.phy.fec import (
    hamming1510_decode,
    hamming1510_encode,
    repeat3_decode,
    repeat3_encode,
)


class TestRepetition:
    def test_round_trip(self, rng):
        bits = rng.integers(0, 2, 60).astype(np.uint8)
        assert np.array_equal(repeat3_decode(repeat3_encode(bits)), bits)

    def test_rate(self):
        assert repeat3_encode(np.ones(10, dtype=np.uint8)).size == 30

    def test_corrects_one_error_per_triplet(self, rng):
        bits = rng.integers(0, 2, 18).astype(np.uint8)
        coded = repeat3_encode(bits)
        for triplet in range(bits.size):
            corrupted = coded.copy()
            corrupted[3 * triplet + int(rng.integers(0, 3))] ^= 1
            assert np.array_equal(repeat3_decode(corrupted), bits)

    def test_two_errors_in_triplet_fail(self):
        bits = np.zeros(3, dtype=np.uint8)
        coded = repeat3_encode(bits)
        coded[0] ^= 1
        coded[1] ^= 1
        assert repeat3_decode(coded)[0] == 1  # majority wins, wrongly

    def test_rejects_bad_length(self):
        with pytest.raises(DecodeError):
            repeat3_decode(np.zeros(4, dtype=np.uint8))


class TestHamming:
    def test_round_trip(self, rng):
        bits = rng.integers(0, 2, 50).astype(np.uint8)
        assert np.array_equal(hamming1510_decode(hamming1510_encode(bits)), bits)

    def test_rate(self):
        assert hamming1510_encode(np.zeros(20, dtype=np.uint8)).size == 30

    def test_systematic(self):
        bits = np.array([1, 0, 1, 1, 0, 0, 1, 0, 1, 1], dtype=np.uint8)
        coded = hamming1510_encode(bits)
        assert np.array_equal(coded[:10], bits)

    def test_corrects_any_single_error(self, rng):
        bits = rng.integers(0, 2, 10).astype(np.uint8)
        coded = hamming1510_encode(bits)
        for pos in range(15):
            corrupted = coded.copy()
            corrupted[pos] ^= 1
            assert np.array_equal(hamming1510_decode(corrupted), bits), pos

    def test_rejects_bad_lengths(self):
        with pytest.raises(ValueError):
            hamming1510_encode(np.zeros(7, dtype=np.uint8))
        with pytest.raises(DecodeError):
            hamming1510_decode(np.zeros(14, dtype=np.uint8))

    def test_all_syndromes_distinct(self):
        # single-error correction requires 15 distinct non-zero syndromes
        from repro.phy.fec import _poly_mod

        syndromes = {_poly_mod(1 << (14 - k), 15) for k in range(15)}
        assert len(syndromes) == 15
        assert 0 not in syndromes
