"""Tests for repro.trace."""

import numpy as np
import pytest

from repro.dsp.samples import SampleBuffer
from repro.errors import TraceFormatError
from repro.trace import TraceReader, TraceWriter, read_trace, write_trace
from repro.trace.format import TraceMeta, sidecar_path
from repro.util.timebase import Timebase


def _buffer(n=1000, fs=8e6):
    rng = np.random.default_rng(0)
    data = (rng.normal(size=n) + 1j * rng.normal(size=n)).astype(np.complex64)
    return SampleBuffer(data, Timebase(fs))


class TestRoundTrip:
    def test_write_read(self, tmp_path):
        buf = _buffer()
        path = tmp_path / "t.iq"
        meta = write_trace(path, buf, center_freq=2.44e9, description="test")
        assert meta.nsamples == 1000
        back = read_trace(path)
        assert np.array_equal(back.samples, buf.samples)
        assert back.sample_rate == buf.sample_rate

    def test_sidecar_exists(self, tmp_path):
        path = tmp_path / "t.iq"
        write_trace(path, _buffer())
        assert sidecar_path(path).exists()

    def test_missing_sidecar(self, tmp_path):
        path = tmp_path / "t.iq"
        _buffer().samples.tofile(path)
        with pytest.raises(TraceFormatError):
            read_trace(path)

    def test_size_mismatch_detected(self, tmp_path):
        path = tmp_path / "t.iq"
        write_trace(path, _buffer())
        with open(path, "ab") as fh:
            fh.write(b"\x00" * 8)
        with pytest.raises(TraceFormatError):
            read_trace(path)


class TestMeta:
    def test_json_round_trip(self):
        meta = TraceMeta(sample_rate=4e6, center_freq=2.4e9, nsamples=5,
                         description="x", extra={"k": 1})
        back = TraceMeta.from_json(meta.to_json())
        assert back == meta

    def test_rejects_bad_json(self):
        with pytest.raises(TraceFormatError):
            TraceMeta.from_json("{not json")

    def test_rejects_wrong_version(self):
        meta = TraceMeta()
        text = meta.to_json().replace('"version": 1', '"version": 99')
        with pytest.raises(TraceFormatError):
            TraceMeta.from_json(text)

    def test_rejects_unknown_fields(self):
        import json

        data = json.loads(TraceMeta().to_json())
        data["bogus"] = True
        with pytest.raises(TraceFormatError):
            TraceMeta.from_json(json.dumps(data))


class TestStreaming:
    def test_reader_windows(self, tmp_path):
        buf = _buffer(2500)
        path = tmp_path / "t.iq"
        write_trace(path, buf)
        windows = list(TraceReader(path, window_samples=1000))
        assert [len(w) for w in windows] == [1000, 1000, 500]
        assert windows[1].start_sample == 1000
        joined = np.concatenate([w.samples for w in windows])
        assert np.array_equal(joined, buf.samples)

    def test_reader_rejects_bad_window(self, tmp_path):
        path = tmp_path / "t.iq"
        write_trace(path, _buffer(10))
        with pytest.raises(ValueError):
            TraceReader(path, window_samples=0)

    def test_writer_accumulates(self, tmp_path):
        path = tmp_path / "t.iq"
        buf = _buffer(300)
        with TraceWriter(path, 8e6, 2.44e9) as writer:
            writer.write(buf.samples[:100])
            writer.write(buf.samples[100:])
        back = read_trace(path)
        assert np.array_equal(back.samples, buf.samples)

    def test_writer_double_close(self, tmp_path):
        writer = TraceWriter(tmp_path / "t.iq", 8e6, 2.44e9)
        writer.close()
        with pytest.raises(TraceFormatError):
            writer.close()

    def test_monitor_consumes_streamed_trace(self, tmp_path, wifi_trace):
        """End-to-end: render -> write -> stream-read -> detect."""
        from repro.core.peak_detector import PeakDetector

        path = tmp_path / "wifi.iq"
        write_trace(path, wifi_trace.buffer)
        detector = PeakDetector()
        npeaks = 0
        for window in TraceReader(path, window_samples=200000):
            npeaks += len(detector.detect(window).history)
        assert npeaks >= len(wifi_trace.ground_truth.observable("wifi")) - 4
